#include <gtest/gtest.h>

#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/workloads/registry.h"

namespace memtis {
namespace {

TEST(PolicyRegistry, ComparisonSetMatchesPaperFig5) {
  const auto& systems = ComparisonSystems();
  ASSERT_EQ(systems.size(), 7u);
  EXPECT_EQ(systems.back(), "memtis");
}

TEST(PolicyRegistry, AllNamesConstruct) {
  for (const char* name :
       {"autonuma", "autotiering", "tiering-0.8", "tpp", "nimble", "multi-clock",
        "hemem", "memtis", "memtis-ns", "memtis-nowarm", "memtis-vanilla",
        "memtis-hybrid", "all-fast", "all-fast-nothp", "all-capacity"}) {
    auto policy = MakePolicy(name, 64ull << 20, 16ull << 20);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_FALSE(policy->name().empty());
  }
}

TEST(PolicyRegistry, MemtisVariantsDifferInFlags) {
  auto full = MakePolicy("memtis", 64ull << 20, 16ull << 20);
  auto ns = MakePolicy("memtis-ns", 64ull << 20, 16ull << 20);
  // Both are MEMTIS underneath...
  EXPECT_NE(dynamic_cast<MemtisPolicy*>(full.get()), nullptr);
  EXPECT_NE(dynamic_cast<MemtisPolicy*>(ns.get()), nullptr);
  // ...and report the same policy name (they differ only in feature flags).
  EXPECT_EQ(full->name(), ns->name());
}

TEST(PolicyRegistry, UnknownNameAborts) {
  EXPECT_DEATH(MakePolicy("no-such-policy", 1 << 20, 1 << 20), "CHECK failed");
}

TEST(WorkloadRegistry, UnknownNameAborts) {
  EXPECT_DEATH(MakeWorkload("no-such-benchmark"), "CHECK failed");
}

TEST(WorkloadRegistry, ScaleChangesFootprint) {
  auto small = MakeWorkload("silo", 0.1);
  auto large = MakeWorkload("silo", 1.0);
  EXPECT_LT(small->footprint_bytes(), large->footprint_bytes());
  // Footprints stay huge-page aligned.
  EXPECT_EQ(small->footprint_bytes() % kHugePageSize, 0u);
}

TEST(WorkloadRegistry, SeedOffsetChangesLayout) {
  // Different seed offsets must produce different (but valid) workloads.
  auto a = MakeWorkload("silo", 0.1, 0);
  auto b = MakeWorkload("silo", 0.1, 1);
  EXPECT_EQ(a->footprint_bytes(), b->footprint_bytes());
}

}  // namespace
}  // namespace memtis
