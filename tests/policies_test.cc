#include <gtest/gtest.h>

#include "src/memtis/policy_registry.h"
#include "src/policies/hemem.h"
#include "src/workloads/synthetic.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

SyntheticWorkload::Params HotColdSplit() {
  // Strong skew at huge-page granularity: a clear hot set about 1/4 of the
  // footprint; fast tier in tests is 1/3 of the footprint.
  SyntheticWorkload::Params p;
  p.footprint_bytes = 48ull << 20;
  p.zipf_s = 1.1;
  p.chunk_pages = kSubpagesPerHuge;
  return p;
}

class PolicyRunTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyRunTest, RunsAndKeepsMemoryConsistent) {
  SyntheticWorkload workload(HotColdSplit());
  auto policy = MakePolicy(GetParam(), workload.footprint_bytes(),
                           workload.footprint_bytes() / 3);
  EngineOptions opts;
  opts.max_accesses = 400'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), *policy, opts);
  const Metrics m = engine.Run(workload);
  EXPECT_GE(m.accesses, 400'000u);
  EXPECT_TRUE(engine.mem().CheckConsistency());
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, PolicyRunTest,
    ::testing::Values("autonuma", "autotiering", "tiering-0.8", "tpp", "nimble",
                      "multi-clock", "hemem", "memtis", "memtis-ns",
                      "memtis-vanilla", "all-fast", "all-capacity"));

class PolicyBeatsAllCapacityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyBeatsAllCapacityTest, SkewedWorkloadBeatsNoTiering) {
  // Any reasonable tiering policy must beat all-capacity on a strongly skewed
  // workload whose hot set fits the fast tier.
  auto run = [&](std::string_view name) {
    SyntheticWorkload workload(HotColdSplit());
    auto policy = MakePolicy(name, workload.footprint_bytes(),
                             workload.footprint_bytes() / 3);
    EngineOptions opts;
    opts.max_accesses = 1'200'000;
    Engine engine(MachineFor(workload, 1.0 / 3.0), *policy, opts);
    return engine.Run(workload).EffectiveRuntimeNs();
  };
  const double baseline = run("all-capacity");
  const double tiered = run(GetParam());
  EXPECT_LT(tiered, baseline) << GetParam() << " slower than all-capacity";
}

INSTANTIATE_TEST_SUITE_P(Systems, PolicyBeatsAllCapacityTest,
                         ::testing::Values("autonuma", "tpp", "hemem", "memtis"));

class PolicyNotPathologicalTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyNotPathologicalTest, AtWorstModeratelySlowerThanNoTiering) {
  // The paper's Fig. 5 shows baselines sometimes land below the all-capacity
  // line (e.g. PageRank 1:2) — but never catastrophically. Bound the damage.
  auto run = [&](std::string_view name) {
    SyntheticWorkload workload(HotColdSplit());
    auto policy = MakePolicy(name, workload.footprint_bytes(),
                             workload.footprint_bytes() / 3);
    EngineOptions opts;
    opts.max_accesses = 800'000;
    Engine engine(MachineFor(workload, 1.0 / 3.0), *policy, opts);
    return engine.Run(workload).EffectiveRuntimeNs();
  };
  const double baseline = run("all-capacity");
  EXPECT_LT(run(GetParam()), baseline * 1.6) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Systems, PolicyNotPathologicalTest,
                         ::testing::Values("autonuma", "autotiering", "tiering-0.8",
                                           "tpp", "nimble", "multi-clock", "hemem",
                                           "memtis"));

TEST(HeMemPolicy, TracksHotSetWithStaticThreshold) {
  SyntheticWorkload workload(HotColdSplit());
  HeMemPolicy policy;
  EngineOptions opts;
  opts.max_accesses = 1'000'000;
  opts.snapshot_interval_ns = 1'000'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), policy, opts);
  const Metrics m = engine.Run(workload);
  // HeMem must have classified some hot set and promoted pages.
  bool saw_hot = false;
  for (const auto& point : m.timeline) {
    saw_hot |= point.classified.hot_bytes > 0;
  }
  EXPECT_TRUE(saw_hot);
  EXPECT_GT(m.migration.promoted_4k(), 0u);
}

TEST(HeMemPolicy, SamplingThreadBurnsACore) {
  SyntheticWorkload workload(HotColdSplit());
  HeMemPolicy policy;
  EngineOptions opts;
  opts.max_accesses = 300'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), policy, opts);
  const Metrics m = engine.Run(workload);
  // Spinning sampler: busy time ~ elapsed time (one full core).
  EXPECT_GT(m.cpu.busy(DaemonKind::kSampler), m.app_ns / 2);
}

TEST(TppPolicy, ReclaimsFastTierForHeadroom) {
  SyntheticWorkload workload(HotColdSplit());
  auto policy = MakePolicy("tpp", workload.footprint_bytes(),
                           workload.footprint_bytes() / 3);
  EngineOptions opts;
  opts.max_accesses = 1'000'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), *policy, opts);
  const Metrics m = engine.Run(workload);
  // The reclaim path demotes cold pages to make allocation headroom, and the
  // fault path promotes hot pages back — both directions must be active.
  EXPECT_GT(m.migration.demoted_4k(), 0u);
  EXPECT_GT(m.migration.promoted_4k(), 0u);
}

TEST(NimblePolicy, GeneratesMoreMigrationTrafficThanMemtis) {
  // Paper §6.2.4: threshold-1 scanning promotes everything touched.
  auto traffic = [&](std::string_view name) {
    SyntheticWorkload::Params p;
    p.footprint_bytes = 48ull << 20;
    p.zipf_s = 0.6;  // broad working set >> fast tier
    p.chunk_pages = kSubpagesPerHuge;
    SyntheticWorkload workload(p);
    auto policy = MakePolicy(name, workload.footprint_bytes(),
                             workload.footprint_bytes() / 9);
    EngineOptions opts;
    opts.max_accesses = 1'000'000;
    Engine engine(MachineFor(workload, 1.0 / 9.0), *policy, opts);
    return engine.Run(workload).migration.migrated_4k();
  };
  EXPECT_GT(traffic("nimble"), 2 * traffic("memtis"));
}

TEST(AutoNumaPolicy, NeverDemotes) {
  SyntheticWorkload workload(HotColdSplit());
  auto policy = MakePolicy("autonuma", 0, 0);
  EngineOptions opts;
  opts.max_accesses = 600'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), *policy, opts);
  const Metrics m = engine.Run(workload);
  EXPECT_EQ(m.migration.demoted_4k(), 0u);
}

TEST(CriticalPathPolicies, FaultPathMigrationCostsMorePerPage) {
  // Fault-based promoters block the app for the whole copy; MEMTIS only pays
  // the TLB shootdown. Compare critical-path ns per migrated 4 KiB page.
  auto critical_per_page = [&](std::string_view name) {
    SyntheticWorkload workload(HotColdSplit());
    auto policy = MakePolicy(name, workload.footprint_bytes(),
                             workload.footprint_bytes() / 3);
    EngineOptions opts;
    opts.max_accesses = 600'000;
    Engine engine(MachineFor(workload, 1.0 / 3.0), *policy, opts);
    const Metrics m = engine.Run(workload);
    EXPECT_GT(m.migration.migrated_4k(), 0u) << name;
    return static_cast<double>(m.critical_path_ns) /
           static_cast<double>(m.migration.migrated_4k());
  };
  // AutoNUMA is excluded: with a pre-filled fast tier and no demotion it
  // never migrates at all (the paper's §6.2.2 observation).
  EXPECT_GT(critical_per_page("tpp"), 2.0 * critical_per_page("memtis"));
  EXPECT_GT(critical_per_page("autotiering"), 2.0 * critical_per_page("memtis"));
}

}  // namespace
}  // namespace memtis
