#include "src/common/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace memtis {
namespace {

std::string RenderToString(const Table& table) {
  std::FILE* f = std::tmpfile();
  table.Print(f);
  std::rewind(f);
  std::string out;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    out += buf;
  }
  std::fclose(f);
  return out;
}

TEST(Table, FormattersProduceStableStrings) {
  EXPECT_EQ(Table::Num(1.23456), "1.23");
  EXPECT_EQ(Table::Num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::Pct(0.5), "50.0%");
  EXPECT_EQ(Table::Pct(0.12345, 2), "12.35%");
  EXPECT_EQ(Table::Mib(2.0 * 1024 * 1024), "2.0MiB");
}

TEST(Table, RendersHeaderAndRows) {
  Table table("demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "22"});
  const std::string out = RenderToString(table);
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header precedes rows.
  EXPECT_LT(out.find("name"), out.find("alpha"));
}

TEST(Table, ShortRowsArePadded) {
  Table table("demo");
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NE(RenderToString(table).find("only"), std::string::npos);
}

TEST(Table, WritesCsv) {
  Table table("demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1.5"});
  table.AddRow({"with,comma", "2"});
  std::FILE* f = std::tmpfile();
  table.WriteCsv(f);
  std::rewind(f);
  std::string out;
  char buf[128];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    out += buf;
  }
  std::fclose(f);
  EXPECT_EQ(out, "name,value\nalpha,1.5\n\"with,comma\",2\n");
}

}  // namespace
}  // namespace memtis
