#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/policies/static_policy.h"
#include "src/workloads/registry.h"
#include "src/workloads/workload_common.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

TEST(WorkloadCommon, SkewedRegionStaysInBounds) {
  SkewedRegion region(0x1000ull << 12, 1024, 1.0, 7);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const Vaddr addr = region.SampleAddr(rng);
    EXPECT_GE(addr, region.start());
    EXPECT_LT(addr, region.start() + 1024 * kPageSize);
  }
}

TEST(WorkloadCommon, ChunkGranularityConcentratesWithinHugePages) {
  // chunk = 512: the hottest 2 MiB chunk should be uniformly hot inside.
  const uint64_t pages = 512 * 16;
  SkewedRegion region(0, pages, 1.2, 7, kSubpagesPerHuge);
  Rng rng(2);
  std::map<uint64_t, uint64_t> chunk_hits;
  std::map<uint64_t, std::map<uint64_t, uint64_t>> subpage_hits;
  for (int i = 0; i < 200000; ++i) {
    const Vpn vpn = VpnOf(region.SampleAddr(rng));
    ++chunk_hits[vpn / kSubpagesPerHuge];
    ++subpage_hits[vpn / kSubpagesPerHuge][SubpageIndexOf(vpn)];
  }
  // Hottest chunk: most subpages touched (high huge-page utilisation).
  auto hottest = std::max_element(
      chunk_hits.begin(), chunk_hits.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  EXPECT_GT(subpage_hits[hottest->first].size(), kSubpagesPerHuge / 2);
}

TEST(WorkloadCommon, SparseHugeRegionHitsOnlyDesignatedSubpages) {
  SparseHugeRegion region(0, 8, 1.0, /*hot=*/32, /*written=*/64,
                          /*stray=*/0.0, 11);
  Rng rng(3);
  std::map<uint64_t, std::map<uint64_t, uint64_t>> subpage_hits;
  for (int i = 0; i < 100000; ++i) {
    const Vpn vpn = VpnOf(region.SampleAddr(rng));
    ++subpage_hits[vpn / kSubpagesPerHuge][SubpageIndexOf(vpn)];
  }
  for (const auto& [block, hits] : subpage_hits) {
    EXPECT_LE(hits.size(), 32u) << "block " << block;
  }
}

TEST(WorkloadCommon, SparseHugeRegionWrittenSetCoversHotSet) {
  SparseHugeRegion region(0, 4, 1.0, 16, 48, /*stray=*/0.5, 13);
  // All sampled subpages (including strays) must be within the written set.
  std::map<uint64_t, std::map<uint64_t, bool>> written;
  region.ForEachWrittenSubpage([&](Vaddr addr) {
    const Vpn vpn = VpnOf(addr);
    written[vpn / kSubpagesPerHuge][SubpageIndexOf(vpn)] = true;
  });
  for (const auto& [block, subs] : written) {
    EXPECT_EQ(subs.size(), 48u) << "block " << block;
  }
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    const Vpn vpn = VpnOf(region.SampleAddr(rng));
    EXPECT_TRUE(written[vpn / kSubpagesPerHuge].count(SubpageIndexOf(vpn)))
        << "sampled an unwritten subpage";
  }
}

TEST(WorkloadCommon, SequentialScannerWrapsAround) {
  SequentialScanner scan(0, 4, kPageSize);  // 4 pages, one access per page
  EXPECT_EQ(scan.Next(), 0u * kPageSize);
  EXPECT_EQ(scan.Next(), 1u * kPageSize);
  EXPECT_EQ(scan.Next(), 2u * kPageSize);
  EXPECT_EQ(scan.Next(), 3u * kPageSize);
  EXPECT_EQ(scan.Next(), 0u * kPageSize);
  EXPECT_DOUBLE_EQ(scan.progress(), 0.25);
}

TEST(WorkloadRegistry, HasAllEightBenchmarks) {
  EXPECT_EQ(StandardBenchmarks().size(), 8u);
  for (const auto& name : StandardBenchmarks()) {
    auto workload = MakeWorkload(name, 0.25);
    ASSERT_NE(workload, nullptr);
    EXPECT_EQ(workload->name(), name);
    EXPECT_GT(workload->footprint_bytes(), 0u);
  }
}

class BenchmarkRunTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkRunTest, RunsUnderStaticPolicyWithinFootprint) {
  auto workload = MakeWorkload(GetParam(), 0.2);
  StaticPolicy policy(TierId::kCapacity);
  const MachineConfig machine = MachineFor(*workload, 1.0);
  EngineOptions opts;
  opts.max_accesses = 150'000;
  Engine engine(machine, policy, opts);
  const Metrics m = engine.Run(*workload);
  EXPECT_GE(m.accesses, 100'000u);
  EXPECT_TRUE(engine.mem().CheckConsistency());
  // RSS must not exceed the declared footprint by much (2 MiB rounding slack
  // per region).
  EXPECT_LE(m.final_rss_pages * kPageSize,
            workload->footprint_bytes() + 16 * kHugePageSize);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkRunTest,
                         ::testing::ValuesIn(StandardBenchmarks()));

TEST(WorkloadProperties, ThpRatioIsHighByDefault) {
  // Table 2: RHP is >75% for every benchmark (all allocations THP-backed).
  for (const auto& name : StandardBenchmarks()) {
    auto workload = MakeWorkload(name, 0.2);
    StaticPolicy policy(TierId::kCapacity);
    EngineOptions opts;
    opts.max_accesses = 50'000;
    Engine engine(MachineFor(*workload, 1.0), policy, opts);
    engine.Run(*workload);
    EXPECT_GT(engine.mem().huge_page_ratio(), 0.75) << name;
  }
}

TEST(WorkloadProperties, SiloHasLowUtilizationLiblinearHigh) {
  // The paper's Fig. 3 contrast, measured on ground-truth accessed bits over
  // the steady-state phase (population writes are excluded by clearing the
  // bits after a warm-up that covers population).
  auto utilization_of = [](const std::string& name) {
    auto workload = MakeWorkload(name, 0.2);
    StaticPolicy policy(TierId::kCapacity);
    EngineOptions opts;
    opts.max_accesses = 200'000;  // covers Silo's population (8192 writes)
    Engine engine(MachineFor(*workload, 1.0), policy, opts);
    engine.Run(*workload);
    engine.mem().ClearAccessedBits();
    engine.set_max_accesses(350'000);  // short steady window (Fig. 3 is sampled)
    engine.Run(*workload);
    uint64_t accessed = 0;
    uint64_t huge_pages = 0;
    engine.mem().ForEachLivePage([&](PageIndex, PageInfo& page) {
      if (page.kind() == PageKind::kHuge && page.huge->accessed.any()) {
        accessed += page.huge->accessed_count();
        ++huge_pages;
      }
    });
    return huge_pages == 0 ? 0.0
                           : static_cast<double>(accessed) /
                                 static_cast<double>(huge_pages * kSubpagesPerHuge);
  };
  const double silo = utilization_of("silo");
  const double liblinear = utilization_of("liblinear");
  EXPECT_LT(silo, 0.45);  // population writes everything once, lookups are sparse
  EXPECT_GT(liblinear, silo);
}

TEST(WorkloadProperties, BtreeHasThpBloat) {
  auto workload = MakeWorkload("btree", 0.2);
  StaticPolicy policy(TierId::kCapacity);
  EngineOptions opts;
  opts.max_accesses = 200'000;
  Engine engine(MachineFor(*workload, 1.0), policy, opts);
  engine.Run(*workload);
  // ~60% of subpages are never written (paper: RSS 38.3 GB THP vs 15.2 GB).
  const double bloat = static_cast<double>(engine.mem().bloat_pages()) /
                       static_cast<double>(engine.mem().mapped_4k_pages());
  EXPECT_GT(bloat, 0.4);
  EXPECT_LT(bloat, 0.75);
}

TEST(WorkloadProperties, BwavesChurnsShortLivedRegions) {
  auto workload = MakeWorkload("603.bwaves", 0.25);
  StaticPolicy policy(TierId::kFast);
  EngineOptions opts;
  opts.max_accesses = 400'000;
  Engine engine(MachineFor(*workload, 2.0), policy, opts);
  engine.Run(*workload);
  EXPECT_TRUE(engine.mem().CheckConsistency());
  // The transient buffer was freed and reallocated at least a few times.
  // (Churn interval is 60k accesses; 400k accesses => ~6 cycles.)
  SUCCEED();
}

}  // namespace
}  // namespace memtis
