#include "src/memtis/memtis_policy.h"

#include <gtest/gtest.h>

#include "src/memtis/policy_registry.h"
#include "src/workloads/kv_workloads.h"
#include "src/workloads/spec_workloads.h"
#include "src/workloads/synthetic.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

MemtisConfig QuickConfig(uint64_t footprint, uint64_t fast) {
  MemtisConfig cfg = MemtisConfig::ScaledDefaults(footprint, fast);
  return cfg;
}

TEST(MemtisPolicy, FillsFastTierWithHottestPages) {
  SyntheticWorkload::Params p;
  p.footprint_bytes = 48ull << 20;
  p.zipf_s = 1.2;
  p.chunk_pages = kSubpagesPerHuge;
  SyntheticWorkload workload(p);
  const uint64_t fast = workload.footprint_bytes() / 3;
  MemtisPolicy policy(QuickConfig(workload.footprint_bytes(), fast));
  EngineOptions opts;
  opts.max_accesses = 2'000'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), policy, opts);
  const Metrics m = engine.Run(workload);
  // The strongly-skewed hot set fits the fast tier: most accesses must land
  // there after warm-up.
  EXPECT_GT(m.fast_hit_ratio(), 0.6);
  EXPECT_GT(policy.stats().threshold_adaptations, 0u);
  EXPECT_GT(policy.stats().coolings, 0u);
  EXPECT_TRUE(engine.mem().CheckConsistency());
}

TEST(MemtisPolicy, HistogramTracksMappedPages) {
  SyntheticWorkload::Params p;
  p.footprint_bytes = 16ull << 20;
  SyntheticWorkload workload(p);
  MemtisPolicy policy(QuickConfig(p.footprint_bytes, p.footprint_bytes / 3));
  EngineOptions opts;
  opts.max_accesses = 500'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), policy, opts);
  engine.Run(workload);
  // Histogram invariant: both histograms count every mapped 4 KiB unit once.
  EXPECT_EQ(policy.page_histogram().total(), engine.mem().mapped_4k_pages());
  EXPECT_EQ(policy.base_histogram().total(), engine.mem().mapped_4k_pages());
}

TEST(MemtisPolicy, HotSetSizeTracksFastTierCapacity) {
  SyntheticWorkload::Params p;
  p.footprint_bytes = 64ull << 20;
  p.zipf_s = 0.9;
  p.chunk_pages = kSubpagesPerHuge;
  SyntheticWorkload workload(p);
  const uint64_t fast = workload.footprint_bytes() / 3;
  MemtisPolicy policy(QuickConfig(workload.footprint_bytes(), fast));
  EngineOptions opts;
  opts.max_accesses = 2'000'000;
  opts.snapshot_interval_ns = 2'000'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), policy, opts);
  const Metrics m = engine.Run(workload);
  ASSERT_GT(m.timeline.size(), 4u);
  // After warm-up the identified hot set tracks the fast tier size. The paper
  // allows temporary overshoot ("the hot set temporarily exceeds the fast
  // tier ... MEMTIS can quickly recover", §6.3.1), so check the mean ratio and
  // bound the overshoot frequency.
  const uint64_t fast_bytes = engine.mem().tier(TierId::kFast).total_frames() * kPageSize;
  double ratio_sum = 0.0;
  size_t over = 0;
  size_t n = 0;
  for (size_t i = m.timeline.size() / 2; i < m.timeline.size(); ++i) {
    const double ratio = static_cast<double>(m.timeline[i].classified.hot_bytes) /
                         static_cast<double>(fast_bytes);
    ratio_sum += ratio;
    over += ratio > 1.25 ? 1 : 0;
    ++n;
  }
  EXPECT_LE(ratio_sum / static_cast<double>(n), 1.1);
  EXPECT_LT(static_cast<double>(over) / static_cast<double>(n), 0.2);
}

TEST(MemtisPolicy, SplitsSkewedHugePages) {
  // Silo-like: low huge-page utilisation -> splits must trigger and raise the
  // fast-tier hit ratio versus no-split.
  auto run = [&](bool enable_split) {
    SiloWorkload::Params wp;
    wp.footprint_bytes = 64ull << 20;
    SiloWorkload workload(wp);
    const uint64_t fast = workload.footprint_bytes() / 9;
    MemtisConfig cfg = QuickConfig(workload.footprint_bytes(), fast);
    cfg.enable_split = enable_split;
    cfg.enable_collapse = false;
    MemtisPolicy policy(cfg);
    EngineOptions opts;
    opts.max_accesses = 3'000'000;
    Engine engine(MachineFor(workload, 1.0 / 9.0), policy, opts);
    const Metrics m = engine.Run(workload);
    EXPECT_TRUE(engine.mem().CheckConsistency());
    return std::make_pair(m, policy.stats());
  };
  auto [with_split, stats_split] = run(true);
  auto [without_split, stats_ns] = run(false);
  EXPECT_GT(stats_split.splits_performed, 0u);
  EXPECT_EQ(stats_ns.splits_performed, 0u);
  EXPECT_GT(with_split.fast_hit_ratio(), without_split.fast_hit_ratio());
}

TEST(MemtisPolicy, SplitReducesBtreeRss) {
  // Paper §6.2.5/Fig. 11: splitting frees never-written subpages.
  BtreeWorkload::Params wp;
  wp.footprint_bytes = 64ull << 20;
  BtreeWorkload workload(wp);
  const uint64_t fast = workload.footprint_bytes() / 9;
  MemtisConfig cfg = QuickConfig(workload.footprint_bytes(), fast);
  cfg.enable_collapse = false;
  MemtisPolicy policy(cfg);
  EngineOptions opts;
  opts.max_accesses = 3'000'000;
  Engine engine(MachineFor(workload, 1.0 / 9.0), policy, opts);
  const Metrics m = engine.Run(workload);
  EXPECT_GT(policy.stats().splits_performed, 0u);
  EXPECT_GT(m.migration.freed_zero_subpages, 0u);
  EXPECT_LT(m.final_rss_pages, m.peak_rss_pages);
}

TEST(MemtisPolicy, NoSplitsWhenUtilizationIsHigh) {
  // Liblinear-like high utilisation: eHR ~ rHR, no split pressure.
  SyntheticWorkload::Params p;
  p.footprint_bytes = 48ull << 20;
  p.zipf_s = 1.1;
  p.chunk_pages = kSubpagesPerHuge;  // hot huge pages are uniformly hot
  SyntheticWorkload workload(p);
  const uint64_t fast = workload.footprint_bytes() / 3;
  MemtisPolicy policy(QuickConfig(workload.footprint_bytes(), fast));
  EngineOptions opts;
  opts.max_accesses = 2'000'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), policy, opts);
  engine.Run(workload);
  EXPECT_EQ(policy.stats().splits_performed, 0u);
}

TEST(MemtisPolicy, WarmSetDoesNotInflateMigrationTraffic) {
  // Fig. 10's ablation: the warm set exists to cut migration traffic by not
  // demoting borderline pages. On an oscillating workload the warm-set
  // variant must not migrate more than the vanilla classifier (the full
  // magnitude of the reduction is measured by bench/fig10).
  auto traffic = [&](std::string_view name) {
    RomsWorkload::Params p;
    p.footprint_bytes = 48ull << 20;
    p.phase_accesses = 250'000;  // hot band rotates: warm/hot oscillation
    RomsWorkload workload(p);
    auto policy = MakePolicy(name, workload.footprint_bytes(),
                             workload.footprint_bytes() / 9);
    EngineOptions opts;
    opts.max_accesses = 2'500'000;
    Engine engine(MachineFor(workload, 1.0 / 9.0), *policy, opts);
    return engine.Run(workload).migration.migrated_4k();
  };
  EXPECT_LE(traffic("memtis-ns"), traffic("memtis-vanilla") * 11 / 10);
}

TEST(MemtisPolicy, BackgroundOperationKeepsCriticalPathSmall) {
  SyntheticWorkload::Params p;
  p.footprint_bytes = 48ull << 20;
  p.zipf_s = 1.0;
  p.chunk_pages = kSubpagesPerHuge;
  SyntheticWorkload workload(p);
  MemtisPolicy policy(QuickConfig(p.footprint_bytes, p.footprint_bytes / 3));
  EngineOptions opts;
  opts.max_accesses = 1'000'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), policy, opts);
  const Metrics m = engine.Run(workload);
  // Critical path time (only TLB shootdowns for MEMTIS) stays under 5% even
  // through the migration-heavy warm-up.
  EXPECT_LT(static_cast<double>(m.critical_path_ns),
            0.05 * static_cast<double>(m.app_ns));
}

TEST(MemtisPolicy, SamplerStaysUnderCpuCap) {
  SyntheticWorkload::Params p;
  p.footprint_bytes = 48ull << 20;
  SyntheticWorkload workload(p);
  MemtisPolicy policy(QuickConfig(p.footprint_bytes, p.footprint_bytes / 3));
  EngineOptions opts;
  opts.max_accesses = 2'000'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), policy, opts);
  const Metrics m = engine.Run(workload);
  // ksampled CPU (one core share) must respect the 3% cap within hysteresis.
  const double share = m.cpu.core_share(DaemonKind::kSampler, m.app_ns);
  EXPECT_LT(share, policy.sampler().config().cpu_limit + 0.015);
}

TEST(MemtisPolicy, EstimatesEhrAboveRhrForSkewedHugePages) {
  SiloWorkload::Params wp;
  wp.footprint_bytes = 64ull << 20;
  SiloWorkload workload(wp);
  const uint64_t fast = workload.footprint_bytes() / 9;
  MemtisConfig cfg = QuickConfig(workload.footprint_bytes(), fast);
  cfg.enable_split = false;  // keep the gap visible
  MemtisPolicy policy(cfg);
  EngineOptions opts;
  opts.max_accesses = 2'500'000;
  Engine engine(MachineFor(workload, 1.0 / 9.0), policy, opts);
  engine.Run(workload);
  ASSERT_GT(policy.stats().benefit_estimations, 0u);
  EXPECT_GT(policy.mean_ehr(), policy.mean_rhr_sampled() + 0.05);
}

TEST(MemtisConfig, ScaledDefaultsFollowFastTier) {
  const MemtisConfig small = MemtisConfig::ScaledDefaults(1ull << 30, 64ull << 20);
  const MemtisConfig large = MemtisConfig::ScaledDefaults(1ull << 30, 512ull << 20);
  EXPECT_GT(large.adapt_interval_samples, small.adapt_interval_samples);
  EXPECT_EQ(small.cooling_interval_samples, small.adapt_interval_samples * 4);
}

}  // namespace
}  // namespace memtis
