#include "src/mem/tlb.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace memtis {
namespace {

TEST(Tlb, MissThenHit) {
  Tlb tlb;
  EXPECT_FALSE(tlb.Access(100, PageKind::kBase));
  EXPECT_TRUE(tlb.Access(100, PageKind::kBase));
  EXPECT_EQ(tlb.stats().base_misses, 1u);
  EXPECT_EQ(tlb.stats().base_hits, 1u);
}

TEST(Tlb, HugeEntryCoversAllSubpages) {
  Tlb tlb;
  const Vpn base = 512 * 7;
  EXPECT_FALSE(tlb.Access(base, PageKind::kHuge));
  // Any subpage of the same huge page hits the same entry.
  EXPECT_TRUE(tlb.Access(base + 1, PageKind::kHuge));
  EXPECT_TRUE(tlb.Access(base + 511, PageKind::kHuge));
  EXPECT_EQ(tlb.stats().huge_misses, 1u);
  EXPECT_EQ(tlb.stats().huge_hits, 2u);
}

TEST(Tlb, ConflictEviction) {
  Tlb tlb(TlbConfig{.base_entries = 16, .huge_entries = 4});
  EXPECT_FALSE(tlb.Access(0, PageKind::kBase));
  EXPECT_FALSE(tlb.Access(16, PageKind::kBase));  // same direct-mapped slot
  EXPECT_FALSE(tlb.Access(0, PageKind::kBase));   // evicted by the conflict
}

TEST(Tlb, HugeReachExceedsBaseReach) {
  // The core THP benefit: the same footprint misses far less with huge pages.
  const uint64_t pages = 16384;
  Tlb base_tlb(TlbConfig{.base_entries = 1024, .huge_entries = 64});
  Tlb huge_tlb(TlbConfig{.base_entries = 1024, .huge_entries = 64});
  uint64_t state = 99;
  for (int i = 0; i < 100000; ++i) {
    const Vpn vpn = SplitMix64(state) % pages;
    base_tlb.Access(vpn, PageKind::kBase);
    huge_tlb.Access(vpn, PageKind::kHuge);
  }
  EXPECT_LT(huge_tlb.stats().miss_ratio(), base_tlb.stats().miss_ratio() / 5);
}

TEST(Tlb, ShootdownInvalidatesRange) {
  Tlb tlb;
  tlb.Access(10, PageKind::kBase);
  tlb.Access(11, PageKind::kBase);
  tlb.Access(5000, PageKind::kBase);
  tlb.Shootdown(10, 2);
  EXPECT_FALSE(tlb.Access(10, PageKind::kBase));
  EXPECT_FALSE(tlb.Access(11, PageKind::kBase));
  EXPECT_TRUE(tlb.Access(5000, PageKind::kBase));
  EXPECT_EQ(tlb.stats().shootdowns, 1u);
  EXPECT_EQ(tlb.stats().invalidated_entries, 2u);
}

TEST(Tlb, ShootdownInvalidatesHugeEntry) {
  Tlb tlb;
  tlb.Access(512, PageKind::kHuge);
  tlb.Shootdown(512, 512);
  EXPECT_FALSE(tlb.Access(512, PageKind::kHuge));
}

TEST(Tlb, FlushClearsEverything) {
  Tlb tlb;
  tlb.Access(1, PageKind::kBase);
  tlb.Access(512, PageKind::kHuge);
  tlb.Flush();
  EXPECT_FALSE(tlb.Access(1, PageKind::kBase));
  EXPECT_FALSE(tlb.Access(512, PageKind::kHuge));
}

TEST(Tlb, LargeRangeShootdownScansWholeArray) {
  Tlb tlb(TlbConfig{.base_entries = 64, .huge_entries = 8});
  for (Vpn v = 0; v < 64; ++v) {
    tlb.Access(v, PageKind::kBase);
  }
  tlb.Shootdown(0, 1u << 20);  // range wider than the TLB
  EXPECT_EQ(tlb.stats().invalidated_entries, 64u);
}

}  // namespace
}  // namespace memtis
