// Unit tests for the shared policy mechanics, using a hand-built
// PolicyContext (no engine).

#include "src/policies/policy_util.h"

#include <gtest/gtest.h>

#include "src/sim/migration_budget.h"

namespace memtis {
namespace {

struct ContextFixture {
  ContextFixture()
      : mem(MemoryConfig{.fast_frames = 2048, .capacity_frames = 8192}),
        rng(1),
        budget(1'000'000, 1'000'000),  // effectively unlimited
        ctx{mem, tlb, costs, cpu, rng, budget} {}

  MemorySystem mem;
  Tlb tlb;
  CostParams costs;
  CpuAccount cpu;
  Rng rng;
  MigrationBudget budget;
  PolicyContext ctx;
};

TEST(PolicyUtil, CopyCostDependsOnPageKind) {
  CostParams costs;
  // Standalone PageInfos (no owning MemorySystem) need their own hot arrays.
  PageHotArrays hot;
  hot.Resize(2);
  PageInfo base;
  base.hot = &hot;
  base.self = 0;
  base.kind() = PageKind::kBase;
  PageInfo huge;
  huge.hot = &hot;
  huge.self = 1;
  huge.kind() = PageKind::kHuge;
  EXPECT_EQ(CopyCost(costs, base), costs.migrate_base_ns);
  EXPECT_EQ(CopyCost(costs, huge), costs.migrate_huge_ns);
}

TEST(PolicyUtil, MigrateCriticalChargesApp) {
  ContextFixture f;
  AllocOptions opts;
  opts.preferred = TierId::kCapacity;
  const Vaddr addr = f.mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex index = f.mem.Lookup(VpnOf(addr));
  ASSERT_TRUE(MigrateCritical(f.ctx, index, TierId::kFast));
  EXPECT_EQ(f.ctx.pending_app_ns,
            f.costs.migrate_huge_ns + f.costs.shootdown_app_ns);
  EXPECT_EQ(f.cpu.total_busy(), 0u);  // nothing on the daemons
}

TEST(PolicyUtil, MigrateBackgroundChargesDaemonAndInterference) {
  ContextFixture f;
  AllocOptions opts;
  opts.preferred = TierId::kCapacity;
  const Vaddr addr = f.mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex index = f.mem.Lookup(VpnOf(addr));
  ASSERT_TRUE(MigrateBackground(f.ctx, index, TierId::kFast));
  EXPECT_EQ(f.cpu.busy(DaemonKind::kMigrator), f.costs.migrate_huge_ns);
  EXPECT_EQ(f.ctx.pending_app_ns,
            f.costs.shootdown_app_ns +
                kSubpagesPerHuge * f.costs.migrate_app_interference_ns);
}

TEST(PolicyUtil, MigrateBackgroundRespectsBandwidthBudget) {
  ContextFixture f;
  MigrationBudget tight(/*pages_per_ms=*/1, /*burst=*/512);
  PolicyContext ctx{f.mem, f.tlb, f.costs, f.cpu, f.rng, tight};
  AllocOptions opts;
  opts.preferred = TierId::kCapacity;
  const Vaddr a = f.mem.AllocateRegion(kHugePageSize, opts);
  const Vaddr b = f.mem.AllocateRegion(kHugePageSize, opts);
  EXPECT_TRUE(MigrateBackground(ctx, f.mem.Lookup(VpnOf(a)), TierId::kFast));
  // The burst is spent; the second huge page must wait.
  EXPECT_FALSE(MigrateBackground(ctx, f.mem.Lookup(VpnOf(b)), TierId::kFast));
  EXPECT_EQ(f.mem.page(f.mem.Lookup(VpnOf(b))).tier(), TierId::kCapacity);
}

TEST(PolicyUtil, WatermarkMath) {
  ContextFixture f;
  EXPECT_FALSE(FastBelowWatermark(f.ctx, 0.5));  // tier is empty -> all free
  f.mem.AllocateRegion(3 * kHugePageSize, AllocOptions{});  // 1536 of 2048 used
  EXPECT_TRUE(FastBelowWatermark(f.ctx, 0.5));   // 25% free < 50%
  EXPECT_FALSE(FastBelowWatermark(f.ctx, 0.2));  // 25% free > 20%
}

TEST(PolicyUtil, HintFaultArmRoundRobin) {
  ContextFixture f;
  AllocOptions opts;
  opts.use_thp = false;
  f.mem.AllocateRegion(kHugePageSize, opts);  // 512 base pages
  HintFaultArm arm(/*armed_bit=*/1, /*scan_batch_pages=*/64);
  arm.ArmBatch(f.ctx);
  uint64_t armed = 0;
  f.mem.ForEachLivePage([&](PageIndex, PageInfo& page) {
    armed += (page.policy_word0 & 1) != 0 ? 1 : 0;
  });
  EXPECT_EQ(armed, 64u);
  // Next batch arms the following 64 (cursor advances).
  arm.ArmBatch(f.ctx);
  armed = 0;
  f.mem.ForEachLivePage([&](PageIndex, PageInfo& page) {
    armed += (page.policy_word0 & 1) != 0 ? 1 : 0;
  });
  EXPECT_EQ(armed, 128u);
}

TEST(PolicyUtil, ConsumeFaultDisarms) {
  PageInfo page;
  page.policy_word0 = 1;
  HintFaultArm arm(1, 8);
  EXPECT_TRUE(arm.ConsumeFault(page));
  EXPECT_EQ(page.policy_word0 & 1, 0u);
  EXPECT_FALSE(arm.ConsumeFault(page));
}

TEST(PolicyUtil, ExchangeCriticalChargesAppForSwapAndBothShootdowns) {
  ContextFixture f;
  AllocOptions opts;
  opts.preferred = TierId::kFast;
  const Vaddr fast = f.mem.AllocateRegion(kHugePageSize, opts);
  opts.preferred = TierId::kCapacity;
  const Vaddr cap = f.mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex hot = f.mem.Lookup(VpnOf(cap));
  const PageIndex cold = f.mem.Lookup(VpnOf(fast));
  ASSERT_TRUE(ExchangeCritical(f.ctx, hot, cold));
  EXPECT_EQ(f.mem.page(hot).tier(), TierId::kFast);
  EXPECT_EQ(f.ctx.pending_app_ns,
            f.costs.exchange_huge_ns + 2 * f.costs.shootdown_app_ns);
  EXPECT_EQ(f.cpu.total_busy(), 0u);  // fault-path work, not daemon work
  // One combined swap-copy beats the migrate+evict pair's two full copies.
  EXPECT_LT(f.costs.exchange_huge_ns, 2 * f.costs.migrate_huge_ns);
}

TEST(PolicyUtil, ExchangeBackgroundChargesDaemonAndDrawsBothSidesFromBudget) {
  ContextFixture f;
  AllocOptions opts;
  opts.preferred = TierId::kFast;
  const Vaddr fast = f.mem.AllocateRegion(kHugePageSize, opts);
  opts.preferred = TierId::kCapacity;
  const Vaddr cap = f.mem.AllocateRegion(kHugePageSize, opts);
  const uint64_t consumed_before = f.budget.consumed_pages();
  ASSERT_TRUE(ExchangeBackground(f.ctx, f.mem.Lookup(VpnOf(cap)),
                                 f.mem.Lookup(VpnOf(fast))));
  // Both sides moved, so the swap draws 2x the page span from the budget.
  EXPECT_EQ(f.budget.consumed_pages() - consumed_before, 2 * kSubpagesPerHuge);
  EXPECT_EQ(f.cpu.busy(DaemonKind::kMigrator), f.costs.exchange_huge_ns);
  EXPECT_EQ(f.ctx.pending_app_ns,
            2 * f.costs.shootdown_app_ns +
                2 * kSubpagesPerHuge * f.costs.migrate_app_interference_ns);
}

TEST(PolicyUtil, ExchangeBackgroundDeniedByExhaustedBudget) {
  ContextFixture f;
  MigrationBudget tight(/*pages_per_ms=*/1, /*burst=*/512);  // < 2 * 512
  PolicyContext ctx{f.mem, f.tlb, f.costs, f.cpu, f.rng, tight};
  AllocOptions opts;
  opts.preferred = TierId::kFast;
  const Vaddr fast = f.mem.AllocateRegion(kHugePageSize, opts);
  opts.preferred = TierId::kCapacity;
  const Vaddr cap = f.mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex hot = f.mem.Lookup(VpnOf(cap));
  EXPECT_FALSE(ExchangeBackground(ctx, hot, f.mem.Lookup(VpnOf(fast))));
  EXPECT_EQ(f.mem.page(hot).tier(), TierId::kCapacity);  // nothing moved
  EXPECT_EQ(f.mem.migration_stats().exchanges, 0u);
}

TEST(PolicyUtil, FindExchangeVictimFiltersAndResumesCursor) {
  ContextFixture f;
  AllocOptions opts;
  opts.preferred = TierId::kFast;
  opts.use_thp = false;
  const Vaddr fast = f.mem.AllocateRegion(kHugePageSize, opts);  // 512 base
  opts.preferred = TierId::kCapacity;
  const Vaddr cap = f.mem.AllocateRegion(kHugePageSize, opts);
  opts.use_thp = true;
  opts.preferred = TierId::kFast;
  const Vaddr fast_huge = f.mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex hot = f.mem.Lookup(VpnOf(cap));

  // Mark exactly two fast base pages cold (policy_word0 = 1 as the flag).
  PageInfo& cold_a = f.mem.page(f.mem.Lookup(VpnOf(fast) + 3));
  PageInfo& cold_b = f.mem.page(f.mem.Lookup(VpnOf(fast) + 200));
  cold_a.policy_word0 = cold_b.policy_word0 = 1;
  const auto is_cold = [](const PageInfo& p) { return p.policy_word0 == 1; };

  PageIndex cursor = 0;
  const PageIndex first =
      FindExchangeVictim(f.ctx, hot, PageKind::kBase, &cursor, is_cold);
  ASSERT_NE(first, kInvalidPage);
  EXPECT_EQ(&f.mem.page(first), &cold_a);
  // The cursor resumes past the last hit: the next call finds the other one.
  const PageIndex second =
      FindExchangeVictim(f.ctx, hot, PageKind::kBase, &cursor, is_cold);
  ASSERT_NE(second, kInvalidPage);
  EXPECT_EQ(&f.mem.page(second), &cold_b);
  // Kind must match: no cold huge page exists, so the huge scan comes back
  // empty even though cold base pages qualify.
  PageIndex huge_cursor = 0;
  EXPECT_EQ(FindExchangeVictim(f.ctx, f.mem.Lookup(VpnOf(cap)), PageKind::kHuge,
                               &huge_cursor, is_cold),
            kInvalidPage);
  (void)fast_huge;
}

TEST(MigrationRateLimiter, WindowedBudget) {
  MigrationRateLimiter limiter(/*pages=*/100, /*window_ns=*/1000);
  EXPECT_TRUE(limiter.Allow(0, 60));
  EXPECT_TRUE(limiter.Allow(10, 40));
  EXPECT_FALSE(limiter.Allow(20, 1));  // window exhausted
  EXPECT_TRUE(limiter.Allow(1000, 100));  // new window
}

}  // namespace
}  // namespace memtis
