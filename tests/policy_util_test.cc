// Unit tests for the shared policy mechanics, using a hand-built
// PolicyContext (no engine).

#include "src/policies/policy_util.h"

#include <gtest/gtest.h>

#include "src/sim/migration_budget.h"

namespace memtis {
namespace {

struct ContextFixture {
  ContextFixture()
      : mem(MemoryConfig{.fast_frames = 2048, .capacity_frames = 8192}),
        rng(1),
        budget(1'000'000, 1'000'000),  // effectively unlimited
        ctx{mem, tlb, costs, cpu, rng, budget} {}

  MemorySystem mem;
  Tlb tlb;
  CostParams costs;
  CpuAccount cpu;
  Rng rng;
  MigrationBudget budget;
  PolicyContext ctx;
};

TEST(PolicyUtil, CopyCostDependsOnPageKind) {
  CostParams costs;
  PageInfo base;
  base.kind = PageKind::kBase;
  PageInfo huge;
  huge.kind = PageKind::kHuge;
  EXPECT_EQ(CopyCost(costs, base), costs.migrate_base_ns);
  EXPECT_EQ(CopyCost(costs, huge), costs.migrate_huge_ns);
}

TEST(PolicyUtil, MigrateCriticalChargesApp) {
  ContextFixture f;
  AllocOptions opts;
  opts.preferred = TierId::kCapacity;
  const Vaddr addr = f.mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex index = f.mem.Lookup(VpnOf(addr));
  ASSERT_TRUE(MigrateCritical(f.ctx, index, TierId::kFast));
  EXPECT_EQ(f.ctx.pending_app_ns,
            f.costs.migrate_huge_ns + f.costs.shootdown_app_ns);
  EXPECT_EQ(f.cpu.total_busy(), 0u);  // nothing on the daemons
}

TEST(PolicyUtil, MigrateBackgroundChargesDaemonAndInterference) {
  ContextFixture f;
  AllocOptions opts;
  opts.preferred = TierId::kCapacity;
  const Vaddr addr = f.mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex index = f.mem.Lookup(VpnOf(addr));
  ASSERT_TRUE(MigrateBackground(f.ctx, index, TierId::kFast));
  EXPECT_EQ(f.cpu.busy(DaemonKind::kMigrator), f.costs.migrate_huge_ns);
  EXPECT_EQ(f.ctx.pending_app_ns,
            f.costs.shootdown_app_ns +
                kSubpagesPerHuge * f.costs.migrate_app_interference_ns);
}

TEST(PolicyUtil, MigrateBackgroundRespectsBandwidthBudget) {
  ContextFixture f;
  MigrationBudget tight(/*pages_per_ms=*/1, /*burst=*/512);
  PolicyContext ctx{f.mem, f.tlb, f.costs, f.cpu, f.rng, tight};
  AllocOptions opts;
  opts.preferred = TierId::kCapacity;
  const Vaddr a = f.mem.AllocateRegion(kHugePageSize, opts);
  const Vaddr b = f.mem.AllocateRegion(kHugePageSize, opts);
  EXPECT_TRUE(MigrateBackground(ctx, f.mem.Lookup(VpnOf(a)), TierId::kFast));
  // The burst is spent; the second huge page must wait.
  EXPECT_FALSE(MigrateBackground(ctx, f.mem.Lookup(VpnOf(b)), TierId::kFast));
  EXPECT_EQ(f.mem.page(f.mem.Lookup(VpnOf(b))).tier, TierId::kCapacity);
}

TEST(PolicyUtil, WatermarkMath) {
  ContextFixture f;
  EXPECT_FALSE(FastBelowWatermark(f.ctx, 0.5));  // tier is empty -> all free
  f.mem.AllocateRegion(3 * kHugePageSize, AllocOptions{});  // 1536 of 2048 used
  EXPECT_TRUE(FastBelowWatermark(f.ctx, 0.5));   // 25% free < 50%
  EXPECT_FALSE(FastBelowWatermark(f.ctx, 0.2));  // 25% free > 20%
}

TEST(PolicyUtil, HintFaultArmRoundRobin) {
  ContextFixture f;
  AllocOptions opts;
  opts.use_thp = false;
  f.mem.AllocateRegion(kHugePageSize, opts);  // 512 base pages
  HintFaultArm arm(/*armed_bit=*/1, /*scan_batch_pages=*/64);
  arm.ArmBatch(f.ctx);
  uint64_t armed = 0;
  f.mem.ForEachLivePage([&](PageIndex, PageInfo& page) {
    armed += (page.policy_word0 & 1) != 0 ? 1 : 0;
  });
  EXPECT_EQ(armed, 64u);
  // Next batch arms the following 64 (cursor advances).
  arm.ArmBatch(f.ctx);
  armed = 0;
  f.mem.ForEachLivePage([&](PageIndex, PageInfo& page) {
    armed += (page.policy_word0 & 1) != 0 ? 1 : 0;
  });
  EXPECT_EQ(armed, 128u);
}

TEST(PolicyUtil, ConsumeFaultDisarms) {
  PageInfo page;
  page.policy_word0 = 1;
  HintFaultArm arm(1, 8);
  EXPECT_TRUE(arm.ConsumeFault(page));
  EXPECT_EQ(page.policy_word0 & 1, 0u);
  EXPECT_FALSE(arm.ConsumeFault(page));
}

TEST(MigrationRateLimiter, WindowedBudget) {
  MigrationRateLimiter limiter(/*pages=*/100, /*window_ns=*/1000);
  EXPECT_TRUE(limiter.Allow(0, 60));
  EXPECT_TRUE(limiter.Allow(10, 40));
  EXPECT_FALSE(limiter.Allow(20, 1));  // window exhausted
  EXPECT_TRUE(limiter.Allow(1000, 100));  // new window
}

}  // namespace
}  // namespace memtis
