// Behaviour tests for each baseline's Table 1 attributes, one section per
// system, using crafted workloads that isolate the attribute under test.

#include <gtest/gtest.h>

#include "src/memtis/policy_registry.h"
#include "src/policies/autonuma.h"
#include "src/policies/autotiering.h"
#include "src/policies/hemem.h"
#include "src/policies/multiclock.h"
#include "src/policies/nimble.h"
#include "src/policies/tpp.h"
#include "src/workloads/synthetic.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

// A workload with a phase change: region A is hot first, then region B.
class PhaseChangeWorkload : public Workload {
 public:
  explicit PhaseChangeWorkload(uint64_t switch_at) : switch_at_(switch_at) {}

  std::string_view name() const override { return "phase-change"; }
  uint64_t footprint_bytes() const override { return 32ull << 20; }

  void Setup(App& app, Rng&) override {
    a_ = app.Alloc(16ull << 20);
    b_ = app.Alloc(16ull << 20);
  }

  bool Step(App& app, Rng& rng) override {
    const Vaddr base = issued_ < switch_at_ ? a_ : b_;
    for (int i = 0; i < 256; ++i, ++issued_) {
      app.Read(base + rng.NextBelow(16ull << 20));
    }
    return true;
  }

  Vaddr region_a() const { return a_; }
  Vaddr region_b() const { return b_; }

 private:
  uint64_t switch_at_;
  Vaddr a_ = 0;
  Vaddr b_ = 0;
  uint64_t issued_ = 0;
};

// Fraction of a 16 MiB region resident in the fast tier.
double FastShare(MemorySystem& mem, Vaddr start) {
  uint64_t fast = 0;
  uint64_t total = 0;
  for (Vpn vpn = VpnOf(start); vpn < VpnOf(start) + (16ull << 20 >> kPageShift);) {
    const PageIndex index = mem.Lookup(vpn);
    if (index == kInvalidPage) {
      ++vpn;
      continue;
    }
    const PageInfo& page = mem.page(index);
    total += page.size_pages();
    fast += page.tier() == TierId::kFast ? page.size_pages() : 0;
    vpn += page.size_pages();
  }
  return total == 0 ? 0.0 : static_cast<double>(fast) / static_cast<double>(total);
}

// --- AutoNUMA: no demotion means it cannot adapt to phase changes ------------

TEST(AutoNumaBehavior, CannotAdaptAfterFastTierFills) {
  PhaseChangeWorkload workload(600'000);
  AutoNumaPolicy policy;
  EngineOptions opts;
  opts.max_accesses = 2'000'000;
  Engine engine(MachineFor(workload, 0.5), policy, opts);
  const Metrics m = engine.Run(workload);
  EXPECT_EQ(m.migration.demoted_4k(), 0u);
  // Region A monopolises the fast tier forever; region B stays stranded.
  EXPECT_GT(FastShare(engine.mem(), workload.region_a()), 0.6);
  EXPECT_LT(FastShare(engine.mem(), workload.region_b()), 0.4);
}

// --- AutoTiering: demotion enables adaptation; allocations shift to capacity --

TEST(AutoTieringBehavior, AdaptsToPhaseChangeViaLfuDemotion) {
  PhaseChangeWorkload workload(600'000);
  AutoTieringPolicy policy;
  EngineOptions opts;
  opts.max_accesses = 2'500'000;
  Engine engine(MachineFor(workload, 0.5), policy, opts);
  const Metrics m = engine.Run(workload);
  EXPECT_GT(m.migration.demoted_4k(), 0u);
  // After the switch, B displaces a good part of A.
  EXPECT_GT(FastShare(engine.mem(), workload.region_b()),
            FastShare(engine.mem(), workload.region_a()));
}

TEST(AutoTieringBehavior, AllocatesToCapacityOnceDemotionStarted) {
  SyntheticWorkload::Params p;
  p.footprint_bytes = 48ull << 20;
  p.zipf_s = 0.9;
  p.chunk_pages = kSubpagesPerHuge;
  SyntheticWorkload workload(p);
  AutoTieringPolicy policy;
  EngineOptions opts;
  opts.max_accesses = 800'000;
  Engine engine(MachineFor(workload, 1.0 / 9.0), policy, opts);
  PolicyContext& ctx = engine.ctx();
  engine.Run(workload);
  // Once the fast tier filled and demotion ran, new allocations prefer the
  // capacity tier (reserved fast pages are promotion-only).
  const AllocOptions placement = policy.PlacementFor(ctx, kHugePageSize, true);
  EXPECT_EQ(placement.preferred, TierId::kCapacity);
}

// --- TPP: two-fault threshold filters single-touch pages ---------------------

TEST(TppBehavior, SecondFaultPromotes) {
  PhaseChangeWorkload workload(500'000);
  TppPolicy policy;
  EngineOptions opts;
  opts.max_accesses = 2'500'000;
  Engine engine(MachineFor(workload, 0.5), policy, opts);
  const Metrics m = engine.Run(workload);
  EXPECT_GT(m.migration.promoted_4k(), 0u);
  EXPECT_GT(m.migration.demoted_4k(), 0u);
  EXPECT_GT(FastShare(engine.mem(), workload.region_b()), 0.3);
}

// --- Nimble: recency threshold 1 thrashes when the referenced set > fast ------

TEST(NimbleBehavior, ThrashesWhenReferencedSetExceedsFastTier) {
  SyntheticWorkload::Params p;
  p.footprint_bytes = 48ull << 20;
  p.zipf_s = 0.3;  // everything gets referenced between scans
  p.chunk_pages = kSubpagesPerHuge;
  SyntheticWorkload workload(p);
  NimblePolicy policy;
  EngineOptions opts;
  opts.max_accesses = 1'500'000;
  Engine engine(MachineFor(workload, 1.0 / 9.0), policy, opts);
  const Metrics m = engine.Run(workload);
  // Sustained bidirectional traffic: the exchange never converges.
  EXPECT_GT(m.migration.promoted_4k(), 10'000u);
  EXPECT_GT(m.migration.demoted_4k(), 10'000u);
}

// --- MULTI-CLOCK: threshold of two consecutive referenced scans ---------------

TEST(MultiClockBehavior, PromotesOnlyRepeatedlyReferencedPages) {
  SyntheticWorkload::Params p;
  p.footprint_bytes = 32ull << 20;
  p.zipf_s = 1.3;  // strong skew: head pages referenced in every scan
  p.chunk_pages = kSubpagesPerHuge;
  SyntheticWorkload workload(p);
  MultiClockPolicy policy;
  EngineOptions opts;
  opts.max_accesses = 1'500'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), policy, opts);
  const Metrics m = engine.Run(workload);
  EXPECT_GT(m.migration.promoted_4k(), 0u);
  EXPECT_GT(m.fast_hit_ratio(), 0.45);
}

// --- HeMem: cooling halves all counters when any page hits the threshold ------

TEST(HeMemBehavior, CoolingKeepsCountsBelowThreshold) {
  SyntheticWorkload::Params p;
  p.footprint_bytes = 32ull << 20;
  p.zipf_s = 1.3;
  p.chunk_pages = kSubpagesPerHuge;
  SyntheticWorkload workload(p);
  HeMemPolicy::Params hp;
  HeMemPolicy policy(hp);
  EngineOptions opts;
  opts.max_accesses = 1'500'000;
  Engine engine(MachineFor(workload, 1.0 / 3.0), policy, opts);
  engine.Run(workload);
  uint64_t max_count = 0;
  engine.mem().ForEachLivePage([&](PageIndex, PageInfo& page) {
    max_count = std::max(max_count, page.access_count());
  });
  EXPECT_LE(max_count, hp.cool_threshold);
}

TEST(HeMemBehavior, AntiThrashingPausesMigrationWhenHotSetTooBig) {
  // Near-uniform traffic over a footprint much larger than the fast tier:
  // nearly everything crosses the static hot threshold eventually, the hot
  // set exceeds the fast tier, and HeMem halts migration (paper §7).
  SyntheticWorkload::Params p;
  p.footprint_bytes = 48ull << 20;
  p.zipf_s = 0.2;
  p.chunk_pages = kSubpagesPerHuge;
  SyntheticWorkload workload(p);
  HeMemPolicy policy;
  EngineOptions opts;
  opts.max_accesses = 2'500'000;
  Engine engine(MachineFor(workload, 1.0 / 17.0), policy, opts);
  const Metrics m = engine.Run(workload);
  // Migration happens early, then pauses: total stays far below what a
  // thrashing policy would generate.
  EXPECT_LT(m.migration.migrated_4k(), 120'000u);
}

}  // namespace
}  // namespace memtis
