#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace memtis {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(9);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) {
    heads += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / 20000.0, 0.3, 0.02);
}

TEST(RandomPermutation, IsAPermutation) {
  Rng rng(5);
  auto perm = RandomPermutation(1000, rng);
  std::vector<bool> seen(1000, false);
  for (uint32_t v : perm) {
    ASSERT_LT(v, 1000u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(ZipfSampler, RanksWithinRange) {
  Rng rng(11);
  ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(ZipfSampler, SingleItemAlwaysZero) {
  Rng rng(11);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 0u);
  }
}

TEST(ZipfSampler, HeadDominatesForHighSkew) {
  Rng rng(13);
  ZipfSampler zipf(10000, 1.2);
  const int n = 100000;
  int head = 0;  // top 1% of ranks
  for (int i = 0; i < n; ++i) {
    head += zipf.Sample(rng) < 100 ? 1 : 0;
  }
  // With s=1.2 over 10k items, the top 1% gets the majority of accesses.
  EXPECT_GT(static_cast<double>(head) / n, 0.5);
}

TEST(ZipfSampler, RankFrequencyIsMonotone) {
  Rng rng(17);
  ZipfSampler zipf(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 200000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  // Aggregate monotonicity: first 5 ranks >> next 5 ranks, etc.
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[0] + counts[1], counts[10] + counts[11]);
  int top10 = 0;
  int bottom10 = 0;
  for (int i = 0; i < 10; ++i) {
    top10 += counts[i];
    bottom10 += counts[40 + i];
  }
  EXPECT_GT(top10, 4 * bottom10);
}

class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, DistributionIsValidAcrossExponents) {
  const double s = GetParam();
  Rng rng(23);
  ZipfSampler zipf(1000, s);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t r = zipf.Sample(rng);
    ASSERT_LT(r, 1000u);
    ++counts[r];
  }
  // Rank 0 must be the modal rank (within sampling noise, compare to rank 500+).
  EXPECT_GT(counts[0], counts[500]);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.3, 0.7, 0.9, 0.99, 1.0, 1.2, 1.5));

TEST(ParetoSampler, ValuesAtLeastOne) {
  Rng rng(29);
  ParetoSampler pareto(1.5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(pareto.Sample(rng), 1.0);
  }
}

}  // namespace
}  // namespace memtis
