// Fault-injection plane tests: spec parsing, injector determinism, and one
// test per injection site asserting the graceful-degradation contract —
// state stays audit-clean, rollbacks are complete, and replays from the same
// seed are byte-identical.

#include "src/fault/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/audit/audit_session.h"
#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/sim/migration_budget.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

// Component-level audit sweep over a bare memory system + TLB.
AuditReport AuditMem(MemorySystem& mem, const Tlb& tlb) {
  AuditReport report;
  AuditCollector out(&report);
  CheckFrameConservation(mem, out);
  CheckPageTableMapping(mem, out);
  CheckHugePageAccounting(mem, out);
  CheckIncrementalCounters(mem, out);
  CheckTlbCoherence(tlb, mem, out);
  return report;
}

void ExpectPlansEqual(const FaultPlan& a, const FaultPlan& b) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    SCOPED_TRACE(FaultSiteName(static_cast<FaultSite>(i)));
    EXPECT_EQ(a.sites[i].probability, b.sites[i].probability);
    EXPECT_EQ(a.sites[i].window_start_ns, b.sites[i].window_start_ns);
    EXPECT_EQ(a.sites[i].window_end_ns, b.sites[i].window_end_ns);
    EXPECT_EQ(a.sites[i].max_injections, b.sites[i].max_injections);
  }
  EXPECT_EQ(a.seed, b.seed);
  if (a.site(FaultSite::kTierShrink).active()) {
    EXPECT_EQ(a.tier_shrink_step, b.tier_shrink_step);
    EXPECT_EQ(a.tier_shrink_cap, b.tier_shrink_cap);
  }
}

TEST(FaultPlan, ParsesPresets) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("none", &plan, &error)) << error;
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.ToSpec(), "none");

  ASSERT_TRUE(FaultPlan::Parse("storm", &plan, &error)) << error;
  EXPECT_TRUE(plan.enabled());
  for (int i = 0; i < kNumFaultSites; ++i) {
    EXPECT_TRUE(plan.sites[i].active()) << FaultSiteName(static_cast<FaultSite>(i));
  }
}

TEST(FaultPlan, ParsesSiteEntries) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(
      "alloc-fail=0.25,migrate-abort=0.5@1000-90000/7,seed=13", &plan, &error))
      << error;
  EXPECT_DOUBLE_EQ(plan.site(FaultSite::kAllocFail).probability, 0.25);
  const FaultSiteSpec& abort_site = plan.site(FaultSite::kMigrateAbort);
  EXPECT_DOUBLE_EQ(abort_site.probability, 0.5);
  EXPECT_EQ(abort_site.window_start_ns, 1000u);
  EXPECT_EQ(abort_site.window_end_ns, 90000u);
  EXPECT_EQ(abort_site.max_injections, 7u);
  EXPECT_EQ(plan.seed, 13u);
  EXPECT_FALSE(plan.site(FaultSite::kSampleDrop).active());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* kBad[] = {
      "bogus=0.5",           // unknown site
      "alloc-fail=1.5",      // probability out of range
      "alloc-fail=x",        // not a number
      "alloc-fail=0.5@10",   // window missing end
      "alloc-fail",          // missing value
      "seed=abc",            // non-numeric seed
      "shrink-step=2.0",     // fraction out of range
  };
  for (const char* spec : kBad) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::Parse(spec, &plan, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(FaultPlan, SpecRoundTrips) {
  FaultPlan plan;
  plan.site(FaultSite::kAllocFail).probability = 0.125;
  plan.site(FaultSite::kMigrateAbort) = {0.5, 1000, 90000, 7};
  plan.site(FaultSite::kTierShrink).probability = 0.02;
  plan.seed = 99;
  plan.tier_shrink_step = 0.05;
  plan.tier_shrink_cap = 0.5;

  FaultPlan reparsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(plan.ToSpec(), &reparsed, &error))
      << plan.ToSpec() << ": " << error;
  ExpectPlansEqual(plan, reparsed);

  // The storm preset round-trips too (reproducer lines depend on this).
  const FaultPlan storm = FaultPlan::Storm();
  ASSERT_TRUE(FaultPlan::Parse(storm.ToSpec(), &reparsed, &error)) << error;
  ExpectPlansEqual(storm, reparsed);
}

TEST(FaultInjector, SameSeedSameSequence) {
  const FaultPlan plan = FaultPlan::Storm();
  FaultInjector a(plan, 42);
  FaultInjector b(plan, 42);
  FaultInjector other(plan, 43);
  int diverged = 0;
  for (int i = 0; i < 2000; ++i) {
    const FaultSite site = static_cast<FaultSite>(i % kNumFaultSites);
    const uint64_t now = static_cast<uint64_t>(i) * 100;
    const bool fired = a.ShouldInject(site, now);
    ASSERT_EQ(fired, b.ShouldInject(site, now)) << "call " << i;
    diverged += fired != other.ShouldInject(site, now) ? 1 : 0;
  }
  for (int i = 0; i < kNumFaultSites; ++i) {
    EXPECT_EQ(a.stats().injected[i], b.stats().injected[i]);
    EXPECT_EQ(a.stats().rolls[i], b.stats().rolls[i]);
  }
  // A different run seed draws an independent sequence.
  EXPECT_GT(diverged, 0);
}

TEST(FaultInjector, WindowAndCapGateWithoutRolling) {
  FaultPlan plan;
  plan.site(FaultSite::kAllocFail) = {1.0, 100, 200, 2};
  FaultInjector faults(plan, 1);
  // Out of window: no injection, no roll counted.
  EXPECT_FALSE(faults.ShouldInject(FaultSite::kAllocFail, 50));
  EXPECT_FALSE(faults.ShouldInject(FaultSite::kAllocFail, 200));
  EXPECT_EQ(faults.stats().rolls[0], 0u);
  // In window, p = 1.0: fires deterministically until the cap.
  EXPECT_TRUE(faults.ShouldInject(FaultSite::kAllocFail, 100));
  EXPECT_TRUE(faults.ShouldInject(FaultSite::kAllocFail, 150));
  EXPECT_FALSE(faults.ShouldInject(FaultSite::kAllocFail, 150));
  EXPECT_EQ(faults.stats().by(FaultSite::kAllocFail), 2u);
  EXPECT_EQ(faults.stats().rolls[0], 2u);
}

TEST(FaultInjector, CertainSitesDoNotPerturbOtherStreams) {
  // p >= 1.0 sites skip the RNG draw, so enabling one must not shift the
  // random sequence another site sees.
  FaultPlan lone;
  lone.site(FaultSite::kMigrateAbort).probability = 0.5;
  FaultPlan mixed = lone;
  mixed.site(FaultSite::kAllocFail).probability = 1.0;
  FaultInjector a(lone, 7);
  FaultInjector b(mixed, 7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = static_cast<uint64_t>(i) * 10;
    EXPECT_TRUE(b.ShouldInject(FaultSite::kAllocFail, now));
    ASSERT_EQ(a.ShouldInject(FaultSite::kMigrateAbort, now),
              b.ShouldInject(FaultSite::kMigrateAbort, now))
        << "call " << i;
  }
}

TEST(FaultSite, AllocFailBlocksPreferredTierOnly) {
  MemorySystem mem(MemoryConfig{.fast_frames = 2048, .capacity_frames = 4096});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  FaultPlan plan;
  plan.site(FaultSite::kAllocFail).probability = 1.0;
  FaultInjector faults(plan, 5);
  mem.AttachFaults(&faults);

  AllocOptions opts;
  opts.preferred = TierId::kFast;
  const Vaddr base = mem.AllocateRegion(2 * kHugePageSize, opts);
  // Every preferred-tier attempt was injected; the fallback never is, so the
  // region degrades into the capacity tier instead of aborting.
  EXPECT_EQ(mem.tier(TierId::kFast).used_frames(), 0u);
  EXPECT_EQ(mem.tier(TierId::kCapacity).used_frames(), 2 * kSubpagesPerHuge);
  EXPECT_GT(faults.stats().by(FaultSite::kAllocFail), 0u);
  const AuditReport report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);

  // Disabled again: allocations land in the preferred tier as usual.
  mem.AttachFaults(nullptr);
  mem.AllocateRegion(kHugePageSize, opts);
  EXPECT_EQ(mem.tier(TierId::kFast).used_frames(), kSubpagesPerHuge);
  (void)base;
}

TEST(FaultSite, MigrateAbortRollsBackCompletely) {
  MemorySystem mem(MemoryConfig{.fast_frames = 4096, .capacity_frames = 4096});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  AllocOptions opts;
  opts.preferred = TierId::kFast;
  const Vaddr base = mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex index = mem.Lookup(VpnOf(base));
  ASSERT_NE(index, kInvalidPage);
  const TierId tier_before = mem.page(index).tier();
  const FrameId frame_before = mem.page(index).frame();
  const uint64_t fast_free = mem.tier(TierId::kFast).free_frames();
  const uint64_t cap_free = mem.tier(TierId::kCapacity).free_frames();
  const uint64_t shootdowns = tlb.stats().shootdowns;

  FaultPlan plan;
  plan.site(FaultSite::kMigrateAbort).probability = 1.0;
  FaultInjector faults(plan, 3);
  mem.AttachFaults(&faults);

  // The abort happens after the destination frame was reserved: the rollback
  // contract says the frame is returned and the page is untouched.
  EXPECT_FALSE(mem.Migrate(index, TierId::kCapacity));
  EXPECT_EQ(mem.migration_stats().aborted_migrations, 1u);
  EXPECT_EQ(mem.migration_stats().failed_migrations, 0u);
  EXPECT_EQ(faults.stats().by(FaultSite::kMigrateAbort), 1u);
  const PageInfo& page = mem.page(index);
  EXPECT_TRUE(page.live);
  EXPECT_EQ(page.tier(), tier_before);
  EXPECT_EQ(page.frame(), frame_before);
  EXPECT_EQ(mem.tier(TierId::kFast).free_frames(), fast_free);
  EXPECT_EQ(mem.tier(TierId::kCapacity).free_frames(), cap_free);
  // No partial copy means no TLB shootdown either.
  EXPECT_EQ(tlb.stats().shootdowns, shootdowns);
  AuditReport report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);

  // The same migration succeeds once the injector is gone.
  mem.AttachFaults(nullptr);
  EXPECT_TRUE(mem.Migrate(index, TierId::kCapacity));
  EXPECT_EQ(mem.page(index).tier(), TierId::kCapacity);
  report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
}

TEST(FaultSite, ExchangeAbortRollsBackBothSides) {
  MemorySystem mem(MemoryConfig{.fast_frames = 512, .capacity_frames = 2048});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  AllocOptions opts;
  opts.use_thp = false;
  opts.preferred = TierId::kFast;
  const Vaddr fast_base = mem.AllocateRegion(kHugePageSize, opts);
  opts.preferred = TierId::kCapacity;
  const Vaddr cap_base = mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex hot = mem.Lookup(VpnOf(cap_base));
  const PageIndex cold = mem.Lookup(VpnOf(fast_base));
  const FrameId hot_frame = mem.page(hot).frame();
  const FrameId cold_frame = mem.page(cold).frame();
  const uint64_t fast_free = mem.tier(TierId::kFast).free_frames();
  const uint64_t shootdowns = tlb.stats().shootdowns;

  FaultPlan plan;
  plan.site(FaultSite::kExchangeAbort).probability = 1.0;
  FaultInjector faults(plan, 3);
  mem.AttachFaults(&faults);

  // The abort fires after the admission gates but before anything moved:
  // both pages keep their tier/frame, and neither span was shot down.
  EXPECT_FALSE(mem.ExchangePages(hot, cold));
  EXPECT_EQ(mem.migration_stats().aborted_exchanges, 1u);
  EXPECT_EQ(mem.migration_stats().failed_exchanges, 0u);
  EXPECT_EQ(mem.migration_stats().exchanges, 0u);
  EXPECT_EQ(faults.stats().by(FaultSite::kExchangeAbort), 1u);
  EXPECT_EQ(mem.page(hot).tier(), TierId::kCapacity);
  EXPECT_EQ(mem.page(cold).tier(), TierId::kFast);
  EXPECT_EQ(mem.page(hot).frame(), hot_frame);
  EXPECT_EQ(mem.page(cold).frame(), cold_frame);
  EXPECT_EQ(mem.tier(TierId::kFast).free_frames(), fast_free);
  EXPECT_EQ(tlb.stats().shootdowns, shootdowns);
  AuditReport report = AuditMem(mem, tlb);
  {
    AuditCollector out(&report);
    CheckExchangeAccounting(mem, faults.stats(), out);
  }
  EXPECT_TRUE(report.ok()) << report.ToJson(2);

  // The same exchange goes through once the injector is gone.
  mem.AttachFaults(nullptr);
  EXPECT_TRUE(mem.ExchangePages(hot, cold));
  EXPECT_EQ(mem.page(hot).tier(), TierId::kFast);
  EXPECT_EQ(mem.page(cold).tier(), TierId::kCapacity);
  EXPECT_EQ(tlb.stats().shootdowns, shootdowns + 2);
  report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
}

TEST(FaultSite, BudgetStarveLeavesLedgerIntact) {
  MigrationBudget budget(/*pages_per_ms=*/1000, /*burst_pages=*/100);
  FaultPlan plan;
  plan.site(FaultSite::kBudgetStarve).probability = 1.0;
  FaultInjector faults(plan, 11);
  budget.AttachFaults(&faults);

  const uint64_t tokens = budget.tokens_raw();
  const uint64_t consumed = budget.consumed_pages();
  const uint64_t credited = budget.credited_pages();
  const uint64_t last_refill = budget.last_refill_ns();
  // Denied as if exhausted; neither the balance nor the refill clock moves.
  EXPECT_FALSE(budget.Consume(/*now_ns=*/5'000'000, /*pages=*/10));
  EXPECT_EQ(budget.tokens_raw(), tokens);
  EXPECT_EQ(budget.consumed_pages(), consumed);
  EXPECT_EQ(budget.credited_pages(), credited);
  EXPECT_EQ(budget.last_refill_ns(), last_refill);
  AuditReport report;
  AuditCollector out(&report);
  CheckMigrationLedger(budget, out);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);

  budget.AttachFaults(nullptr);
  EXPECT_TRUE(budget.Consume(5'000'000, 10));
  EXPECT_EQ(budget.consumed_pages(), consumed + 10);
}

TEST(FaultSite, ShrinkTierPinsOnlyFreeFrames) {
  MemorySystem mem(MemoryConfig{.fast_frames = 1024, .capacity_frames = 1024});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  AllocOptions opts;
  opts.preferred = TierId::kFast;
  mem.AllocateRegion(kHugePageSize, opts);  // 512 frames used
  const uint64_t rss = mem.rss_pages();

  EXPECT_EQ(mem.ShrinkTier(TierId::kFast, 256), 256u);
  EXPECT_EQ(mem.pinned_frames(TierId::kFast), 256u);
  EXPECT_EQ(mem.tier(TierId::kFast).free_frames(), 1024u - 512u - 256u);
  // Pins are invisible to the resident set, like fragmentation pins.
  EXPECT_EQ(mem.rss_pages(), rss);
  AuditReport report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);

  // Over-asking pins only what is actually free.
  EXPECT_EQ(mem.ShrinkTier(TierId::kFast, 100'000), 256u);
  EXPECT_EQ(mem.tier(TierId::kFast).free_frames(), 0u);
  EXPECT_EQ(mem.rss_pages(), rss);
  report = AuditMem(mem, tlb);
  EXPECT_TRUE(report.ok()) << report.ToJson(2);
}

// --- Engine-level behaviour --------------------------------------------------

struct FaultRun {
  Metrics metrics;
  AuditReport report;
  uint64_t fast_pinned = 0;
  uint64_t fast_total_frames = 0;
};

FaultRun RunEngineWithFaults(const FaultPlan& plan, uint64_t seed,
                             const std::string& system = "memtis",
                             uint64_t accesses = 150'000,
                             double fast_ratio = 1.0 / 3.0) {
  auto workload = MakeWorkload("btree", 0.12);
  auto policy = MakePolicy(system, workload->footprint_bytes(),
                           static_cast<uint64_t>(
                               workload->footprint_bytes() * fast_ratio));
  EngineOptions opts;
  opts.max_accesses = accesses;
  opts.seed = seed;
  opts.faults = plan;
  AuditSession audit;
  opts.audit = &audit;
  Engine engine(MachineFor(*workload, fast_ratio), *policy, opts);
  FaultRun out;
  out.metrics = engine.Run(*workload);
  out.report = audit.report();
  out.fast_pinned = engine.mem().pinned_frames(TierId::kFast);
  out.fast_total_frames = engine.mem().tier(TierId::kFast).total_frames();
  return out;
}

TEST(EngineFaults, SampleDropsAreAccountedAndAuditClean) {
  FaultPlan plan;
  plan.site(FaultSite::kSampleDrop).probability = 1.0;
  const FaultRun run = RunEngineWithFaults(plan, 42);
  // Every PEBS record was dropped before delivery; the run survives and the
  // sample ledger (checked by the auditor every tick) stays exact.
  EXPECT_GT(run.metrics.faults.by(FaultSite::kSampleDrop), 0u);
  EXPECT_EQ(run.metrics.faults.total_injected(),
            run.metrics.faults.by(FaultSite::kSampleDrop));
  EXPECT_TRUE(run.report.ok()) << run.report.ToJson(2);
}

TEST(EngineFaults, MigrateAbortsMatchInjectorOneToOne) {
  FaultPlan plan;
  plan.site(FaultSite::kMigrateAbort).probability = 0.5;
  // TPP promotes on access, so migrations (and thus aborts) happen early.
  const FaultRun run = RunEngineWithFaults(plan, 42, "tpp");
  EXPECT_GT(run.metrics.faults.by(FaultSite::kMigrateAbort), 0u);
  EXPECT_EQ(run.metrics.migration.aborted_migrations,
            run.metrics.faults.by(FaultSite::kMigrateAbort));
  EXPECT_TRUE(run.report.ok()) << run.report.ToJson(2);
}

TEST(EngineFaults, ExchangeAbortsMatchInjectorOneToOne) {
  FaultPlan plan;
  plan.site(FaultSite::kExchangeAbort).probability = 0.5;
  // AutoTiering exchanges natively once the fast tier fills; a tight ratio
  // keeps it full so the site is exercised throughout the run. The engine's
  // registered "exchange-accounting" audit check also certifies the 1:1
  // pairing every tick.
  const FaultRun run =
      RunEngineWithFaults(plan, 42, "autotiering", 150'000, 1.0 / 9.0);
  EXPECT_GT(run.metrics.faults.by(FaultSite::kExchangeAbort), 0u);
  EXPECT_EQ(run.metrics.migration.aborted_exchanges,
            run.metrics.faults.by(FaultSite::kExchangeAbort));
  // The surviving rolls still completed swaps.
  EXPECT_GT(run.metrics.migration.exchanges, 0u);
  EXPECT_TRUE(run.report.ok()) << run.report.ToJson(2);
}

TEST(EngineFaults, TierShrinkRespectsCumulativeCap) {
  const FaultRun baseline = RunEngineWithFaults(FaultPlan{}, 42);
  FaultPlan plan;
  plan.site(FaultSite::kTierShrink).probability = 1.0;
  plan.tier_shrink_step = 0.05;
  plan.tier_shrink_cap = 0.2;
  const FaultRun run = RunEngineWithFaults(plan, 42);
  ASSERT_GT(run.metrics.faults.by(FaultSite::kTierShrink), 0u);
  const uint64_t shrunk = run.fast_pinned - baseline.fast_pinned;
  EXPECT_GT(shrunk, 0u);
  const uint64_t cap = static_cast<uint64_t>(
      static_cast<double>(run.fast_total_frames) * plan.tier_shrink_cap);
  EXPECT_LE(shrunk, cap);
  EXPECT_TRUE(run.report.ok()) << run.report.ToJson(2);
}

TEST(EngineFaults, StormReplayIsByteIdentical) {
  const FaultPlan storm = FaultPlan::Storm();
  const FaultRun a = RunEngineWithFaults(storm, 7);
  const FaultRun b = RunEngineWithFaults(storm, 7);
  EXPECT_GT(a.metrics.faults.total_injected(), 0u);
  EXPECT_TRUE(a.report.ok()) << a.report.ToJson(2);
  EXPECT_EQ(a.metrics.ToJson(2), b.metrics.ToJson(2));
  // A different engine seed draws a different fault sequence.
  const FaultRun c = RunEngineWithFaults(storm, 8);
  EXPECT_NE(a.metrics.ToJson(2), c.metrics.ToJson(2));
}

}  // namespace
}  // namespace memtis
