// Phase-structure tests for the benchmark models: each model must exhibit the
// temporal behaviour its paper analysis depends on.

#include <gtest/gtest.h>

#include <map>

#include "src/memtis/memtis_policy.h"
#include "src/policies/static_policy.h"
#include "src/workloads/graph_workloads.h"
#include "src/workloads/hpc_workloads.h"
#include "src/workloads/spec_workloads.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

// Collects ground-truth page access counts over a window of a run.
std::map<Vpn, uint64_t> CountWindow(Engine& engine, Workload& workload,
                                    uint64_t from, uint64_t to) {
  // Uses the huge-page accessed bitsets as a cheap proxy: clear, run, read.
  engine.set_max_accesses(from);
  engine.Run(workload);
  engine.mem().ClearAccessedBits();
  engine.set_max_accesses(to);
  engine.Run(workload);
  std::map<Vpn, uint64_t> counts;
  engine.mem().ForEachLivePage([&](PageIndex, PageInfo& page) {
    if (page.kind() == PageKind::kHuge) {
      counts[page.base_vpn] = page.huge->accessed_count();
    }
  });
  return counts;
}

TEST(WorkloadPhases, Graph500GenerationIsWriteHeavySearchIsReadHeavy) {
  Graph500Workload::Params p;
  p.footprint_bytes = 32ull << 20;
  p.gen_accesses_per_page = 12;
  Graph500Workload workload(p);
  StaticPolicy policy(TierId::kFast);
  EngineOptions opts;
  opts.max_accesses = 50'000;  // well inside the generation phase
  Engine engine(MachineFor(workload, 1.5), policy, opts);
  Metrics m = engine.Run(workload);
  const double early_store_ratio =
      static_cast<double>(m.stores) / static_cast<double>(m.accesses);
  EXPECT_GT(early_store_ratio, 0.9);  // generation writes

  engine.set_max_accesses(2'000'000);  // into the search phase
  m = engine.Run(workload);
  const double late_store_ratio =
      static_cast<double>(m.stores) / static_cast<double>(m.accesses);
  EXPECT_LT(late_store_ratio, early_store_ratio);
}

TEST(WorkloadPhases, XSBenchTrafficConcentratesAfterWarmPhase) {
  // Early (flat-skew) phase spreads traffic across the hot region; the steady
  // state concentrates it (paper Fig. 2's XSBench shape). Measured via MEMTIS
  // sample counts with cooling disabled, as window deltas of the hottest
  // page's share.
  XSBenchWorkload::Params p;
  p.footprint_bytes = 32ull << 20;
  p.warm_phase_accesses = 300'000;
  XSBenchWorkload workload(p);
  MemtisConfig cfg;
  cfg.cooling_interval_samples = 1ull << 40;  // never cool: counts accumulate
  cfg.enable_split = false;
  cfg.enable_collapse = false;
  MemtisPolicy policy(cfg);
  EngineOptions opts;
  opts.max_accesses = 1;
  Engine engine(MachineFor(workload, 1.5), policy, opts);

  auto snapshot = [&] {
    std::map<Vpn, uint64_t> counts;
    engine.mem().ForEachLivePage([&](PageIndex, PageInfo& page) {
      counts[page.base_vpn] = page.access_count();
    });
    return counts;
  };
  auto top_share = [&](uint64_t from, uint64_t to) {
    engine.set_max_accesses(from);
    engine.Run(workload);
    const auto before = snapshot();
    engine.set_max_accesses(to);
    engine.Run(workload);
    const auto after = snapshot();
    uint64_t top = 0;
    uint64_t total = 0;
    for (const auto& [vpn, count] : after) {
      const auto it = before.find(vpn);
      const uint64_t delta = count - (it == before.end() ? 0 : it->second);
      top = std::max(top, delta);
      total += delta;
    }
    return total == 0 ? 0.0 : static_cast<double>(top) / static_cast<double>(total);
  };

  const double early = top_share(50'000, 150'000);
  const double late = top_share(600'000, 700'000);
  EXPECT_GT(late, early + 0.08);
}

TEST(WorkloadPhases, RomsHotBandRotates) {
  RomsWorkload::Params p;
  p.footprint_bytes = 32ull << 20;
  p.phase_accesses = 150'000;
  p.num_bands = 8;
  RomsWorkload workload(p);
  StaticPolicy policy(TierId::kFast);
  EngineOptions opts;
  opts.max_accesses = 1;
  Engine engine(MachineFor(workload, 1.5), policy, opts);

  auto hottest_vpn = [](const std::map<Vpn, uint64_t>& counts) {
    Vpn best = 0;
    uint64_t best_count = 0;
    for (const auto& [vpn, c] : counts) {
      if (c > best_count) {
        best_count = c;
        best = vpn;
      }
    }
    return best;
  };
  // Two short windows in different phases hit different bands (windows kept
  // short so the background sweep does not saturate every page's bitset).
  const auto w1 = CountWindow(engine, workload, 10'000, 30'000);
  const auto w2 = CountWindow(engine, workload, 310'000, 330'000);
  EXPECT_NE(hottest_vpn(w1), hottest_vpn(w2));
}

TEST(WorkloadPhases, BwavesTransientBufferMoves) {
  BwavesWorkload::Params p;
  p.footprint_bytes = 24ull << 20;
  p.short_lived_bytes = 4ull << 20;
  p.churn_interval = 50'000;
  BwavesWorkload workload(p);
  StaticPolicy policy(TierId::kFast);
  EngineOptions opts;
  opts.max_accesses = 600'000;
  Engine engine(MachineFor(workload, 1.5), policy, opts);
  engine.Run(workload);
  // ~11 churn cycles of a 4 MiB buffer: allocation/free traffic must show in
  // the region bookkeeping (RSS steady, consistency preserved).
  EXPECT_TRUE(engine.mem().CheckConsistency());
  EXPECT_LE(engine.mem().rss_pages() * kPageSize,
            workload.footprint_bytes() + 8 * kHugePageSize);
}

}  // namespace
}  // namespace memtis
