// Unit-level tests of MemtisPolicy internals against a hand-built
// PolicyContext: histogram bookkeeping through allocation, sampling, cooling,
// split and collapse, plus the hybrid-scan and THP-shrinker extensions.

#include <gtest/gtest.h>

#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/sim/migration_budget.h"
#include "src/workloads/kv_workloads.h"
#include "src/workloads/synthetic.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

struct Fixture {
  Fixture()
      : mem(MemoryConfig{.fast_frames = 4096, .capacity_frames = 16384}),
        rng(1),
        budget(1'000'000, 1'000'000),
        ctx{mem, tlb, costs, cpu, rng, budget} {}

  MemorySystem mem;
  Tlb tlb;
  CostParams costs;
  CpuAccount cpu;
  Rng rng;
  MigrationBudget budget;
  PolicyContext ctx;
};

MemtisConfig TestConfig() {
  MemtisConfig cfg;
  cfg.adapt_interval_samples = 512;
  cfg.cooling_interval_samples = 2048;
  cfg.min_estimate_interval_samples = 1024;
  return cfg;
}

// Allocates one huge page through the policy's bookkeeping and returns it.
PageIndex AllocHuge(Fixture& f, MemtisPolicy& policy, TierId tier) {
  AllocOptions opts;
  opts.preferred = tier;
  const Vaddr addr = f.mem.AllocateRegion(kHugePageSize, opts);
  const PageIndex index = f.mem.Lookup(VpnOf(addr));
  policy.OnPageAllocated(f.ctx, index, f.mem.page(index));
  return index;
}

TEST(MemtisUnit, AllocationRegistersInBothHistograms) {
  Fixture f;
  MemtisPolicy policy(TestConfig());
  policy.Init(f.ctx);
  AllocHuge(f, policy, TierId::kFast);
  EXPECT_EQ(policy.page_histogram().total(), kSubpagesPerHuge);
  EXPECT_EQ(policy.base_histogram().total(), kSubpagesPerHuge);
  // All subpage units start cold (bin 0) in the emulated base histogram.
  EXPECT_EQ(policy.base_histogram().count(0), kSubpagesPerHuge);
}

TEST(MemtisUnit, InitialHotnessEqualsHotThreshold) {
  Fixture f;
  MemtisPolicy policy(TestConfig());
  policy.Init(f.ctx);
  const PageIndex index = AllocHuge(f, policy, TierId::kFast);
  const PageInfo& page = f.mem.page(index);
  // Fresh pages land in the hot bin (paper §4.2.1), so they are not
  // immediate demotion candidates.
  EXPECT_GE(static_cast<int>(page.histogram_bin), policy.hot_threshold_bin());
}

TEST(MemtisUnit, SamplesMovePagesUpTheHistogram) {
  Fixture f;
  MemtisPolicy policy(TestConfig());
  policy.Init(f.ctx);
  const PageIndex index = AllocHuge(f, policy, TierId::kCapacity);
  PageInfo& page = f.mem.page(index);
  const int bin_before = page.histogram_bin;
  // Feed enough accesses that the sampler fires repeatedly on one subpage.
  const Vaddr addr = page.base_vpn << kPageShift;
  for (int i = 0; i < 20000; ++i) {
    f.ctx.now_ns += 200;
    policy.OnAccess(f.ctx, index, page, Access{addr, false});
  }
  EXPECT_GT(page.access_count(), 0u);
  EXPECT_GT(static_cast<int>(page.histogram_bin), bin_before);
  // Subpage 0 carries all the subpage-level hotness.
  EXPECT_GT(page.huge->subpage_count[0], 0u);
  EXPECT_EQ(page.huge->subpage_count[1], 0u);
  // Histogram still counts exactly the mapped units.
  EXPECT_EQ(policy.page_histogram().total(), f.mem.mapped_4k_pages());
  EXPECT_EQ(policy.base_histogram().total(), f.mem.mapped_4k_pages());
}

TEST(MemtisUnit, HotCapacityPageEntersPromotionListAndMigrates) {
  Fixture f;
  MemtisPolicy policy(TestConfig());
  policy.Init(f.ctx);
  const PageIndex index = AllocHuge(f, policy, TierId::kCapacity);
  PageInfo& page = f.mem.page(index);
  const Vaddr addr = page.base_vpn << kPageShift;
  for (int i = 0; i < 40000 && page.tier() == TierId::kCapacity; ++i) {
    f.ctx.now_ns += 200;
    policy.OnAccess(f.ctx, index, page, Access{addr, false});
    policy.Tick(f.ctx);
  }
  EXPECT_EQ(page.tier(), TierId::kFast);
  EXPECT_GT(f.mem.migration_stats().promoted_huge, 0u);
}

TEST(MemtisUnit, FreeRemovesFromHistograms) {
  Fixture f;
  MemtisPolicy policy(TestConfig());
  policy.Init(f.ctx);
  AllocOptions opts;
  const Vaddr addr = f.mem.AllocateRegion(2 * kHugePageSize, opts);
  for (int i = 0; i < 2; ++i) {
    const PageIndex index = f.mem.Lookup(VpnOf(addr) + i * kSubpagesPerHuge);
    policy.OnPageAllocated(f.ctx, index, f.mem.page(index));
  }
  EXPECT_EQ(policy.page_histogram().total(), 2 * kSubpagesPerHuge);
  for (int i = 0; i < 2; ++i) {
    const PageIndex index = f.mem.Lookup(VpnOf(addr) + i * kSubpagesPerHuge);
    policy.OnPageFreed(f.ctx, index, f.mem.page(index));
  }
  f.mem.FreeRegion(addr);
  EXPECT_EQ(policy.page_histogram().total(), 0u);
  EXPECT_EQ(policy.base_histogram().total(), 0u);
}

TEST(MemtisUnit, ShrinkerSplitsMostlyZeroHugePages) {
  // End-to-end via the engine: btree's bloated huge pages get splintered by
  // the THP-shrinker variant even though skew-based splitting is off.
  BtreeWorkload::Params wp;
  wp.footprint_bytes = 64ull << 20;
  BtreeWorkload workload(wp);
  auto policy = MakePolicy("memtis-shrinker", wp.footprint_bytes,
                           wp.footprint_bytes / 9);
  EngineOptions opts;
  opts.max_accesses = 2'000'000;
  Engine engine(MachineFor(workload, 1.0 / 9.0), *policy, opts);
  const Metrics m = engine.Run(workload);
  EXPECT_GT(m.migration.splits, 0u);
  EXPECT_GT(m.migration.freed_zero_subpages, 0u);
  EXPECT_LT(m.final_rss_pages, m.peak_rss_pages);
  EXPECT_TRUE(engine.mem().CheckConsistency());
}

TEST(MemtisUnit, ShrinkerLeavesFullyWrittenPagesAlone) {
  // Silo writes every subpage during population: nothing is mostly-zero, so
  // the shrinker never fires (contrast with skew-based splitting, which does).
  SiloWorkload::Params wp;
  wp.footprint_bytes = 48ull << 20;
  SiloWorkload workload(wp);
  auto policy = MakePolicy("memtis-shrinker", wp.footprint_bytes,
                           wp.footprint_bytes / 9);
  EngineOptions opts;
  opts.max_accesses = 2'000'000;
  Engine engine(MachineFor(workload, 1.0 / 9.0), *policy, opts);
  const Metrics m = engine.Run(workload);
  EXPECT_EQ(m.migration.splits, 0u);
}

TEST(MemtisUnit, HybridScanQueuesIdleFastPagesForDemotion) {
  // Two regions in the fast tier; only one is ever touched. With hybrid
  // scanning on, the untouched one gets demoted even though PEBS never saw it.
  class HalfIdleWorkload : public Workload {
   public:
    std::string_view name() const override { return "half-idle"; }
    uint64_t footprint_bytes() const override { return 16ull << 20; }
    void Setup(App& app, Rng&) override {
      hot_ = app.Alloc(8ull << 20);
      idle_ = app.Alloc(8ull << 20);
    }
    bool Step(App& app, Rng& rng) override {
      for (int i = 0; i < 256; ++i) {
        app.Read(hot_ + rng.NextBelow(8ull << 20));
      }
      return true;
    }
    Vaddr hot_ = 0;
    Vaddr idle_ = 0;
  };

  HalfIdleWorkload workload;
  MemtisConfig cfg = MemtisConfig::ScaledDefaults(workload.footprint_bytes(),
                                                  workload.footprint_bytes());
  cfg.hybrid_scan = true;
  MemtisPolicy policy(cfg);
  EngineOptions opts;
  opts.max_accesses = 1'000'000;
  // Fast tier big enough for everything: without demotion pressure nothing
  // would ever leave, so this isolates the hybrid path's contribution of
  // demotion *candidates* (their actual demotion needs space pressure; use a
  // tier that just fits both regions, then verify candidates were found by
  // checking scanner activity).
  Engine engine(MachineFor(workload, 1.1), policy, opts);
  const Metrics m = engine.Run(workload);
  EXPECT_GT(m.cpu.busy(DaemonKind::kScanner), 0u);
  EXPECT_TRUE(engine.mem().CheckConsistency());
  EXPECT_EQ(policy.page_histogram().total(), engine.mem().mapped_4k_pages());
}

}  // namespace
}  // namespace memtis
