// Start-up fragmentation: broken huge blocks force THP fallback to base
// pages, reproducing Table 2's RHP < 100%.

#include <gtest/gtest.h>

#include "src/mem/memory_system.h"
#include "src/policies/static_policy.h"
#include "src/sim/engine.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

TEST(Fragmentation, BreaksHugeBlocks) {
  MemoryConfig cfg;
  cfg.fast_frames = 8192;      // 16 huge blocks
  cfg.capacity_frames = 8192;
  cfg.fragmentation = 0.5;
  MemorySystem mem(cfg);
  // Half the huge blocks are broken: at most 8 huge allocations succeed.
  int huge_ok = 0;
  while (mem.tier(TierId::kFast).allocator().CanAllocate(BuddyAllocator::kMaxOrder)) {
    mem.tier(TierId::kFast).allocator().Allocate(BuddyAllocator::kMaxOrder);
    ++huge_ok;
  }
  EXPECT_EQ(huge_ok, 8);
  // Base allocations still work in the broken blocks.
  EXPECT_TRUE(mem.tier(TierId::kFast).allocator().CanAllocate(0));
}

TEST(Fragmentation, ZeroFragmentationIsUnchanged) {
  MemoryConfig cfg;
  cfg.fast_frames = 8192;
  cfg.capacity_frames = 8192;
  MemorySystem mem(cfg);
  EXPECT_EQ(mem.tier(TierId::kFast).free_frames(), 8192u);
  EXPECT_EQ(mem.rss_pages(), 0u);
}

TEST(Fragmentation, RssExcludesPinnedFrames) {
  MemoryConfig cfg;
  cfg.fast_frames = 8192;
  cfg.capacity_frames = 8192;
  cfg.fragmentation = 0.25;
  MemorySystem mem(cfg);
  EXPECT_EQ(mem.rss_pages(), 0u);  // pins are not application memory
  mem.AllocateRegion(kHugePageSize, AllocOptions{});
  EXPECT_EQ(mem.rss_pages(), kSubpagesPerHuge);
  EXPECT_TRUE(mem.CheckConsistency());
}

TEST(Fragmentation, ReducesHugePageRatioEndToEnd) {
  auto workload = MakeWorkload("silo", 0.15);
  StaticPolicy policy(TierId::kCapacity);
  MachineConfig machine = MachineFor(*workload, 1.0);
  // High enough that even with cross-tier spill there are not enough intact
  // huge blocks for the whole footprint.
  machine.mem.fragmentation = 0.9;
  EngineOptions opts;
  opts.max_accesses = 100'000;
  Engine engine(machine, policy, opts);
  engine.Run(*workload);
  const double rhp = engine.mem().huge_page_ratio();
  EXPECT_LT(rhp, 1.0);  // some spans fell back to base pages (paper Table 2)
  EXPECT_GT(rhp, 0.0);
  EXPECT_TRUE(engine.mem().CheckConsistency());
}

TEST(Fragmentation, DeterministicForSeed) {
  MemoryConfig cfg;
  cfg.fast_frames = 8192;
  cfg.capacity_frames = 8192;
  cfg.fragmentation = 0.5;
  MemorySystem a(cfg);
  MemorySystem b(cfg);
  EXPECT_EQ(a.tier(TierId::kFast).free_frames(), b.tier(TierId::kFast).free_frames());
}

}  // namespace
}  // namespace memtis
