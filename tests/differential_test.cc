// Differential harness: auditing is observation-only, so a job run under the
// full audit layer must produce byte-identical metrics to the same job run
// without it — and real policies must survive full auditing with zero
// violations across policies and seeds.

#include <gtest/gtest.h>

#include <string>

#include "src/runner/sweep.h"

namespace memtis {
namespace {

JobSpec SpecFor(const std::string& system, uint32_t seed_index) {
  JobSpec spec;
  spec.system = system;
  spec.benchmark = "btree";
  spec.fast_ratio = 1.0 / 3.0;
  spec.accesses = 120'000;
  spec.seed_index = seed_index;
  return spec;
}

class DifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DifferentialTest, AuditOnAndOffGiveByteIdenticalMetrics) {
  JobSpec plain = SpecFor(GetParam(), 0);
  JobSpec audited = plain;
  audited.audit = true;
  audited.audit_epoch_interval_ns = 500'000;  // epochs on too

  const JobResult plain_result = RunJob(plain);
  const JobResult audited_result = RunJob(audited);

  ASSERT_FALSE(plain_result.audited);
  ASSERT_TRUE(audited_result.audited);
  EXPECT_TRUE(audited_result.audit_report.ok())
      << audited_result.audit_report.ToJson(2);
  EXPECT_GT(audited_result.audit_report.ticks_audited, 0u);

  // The audit layer observed every tick yet the simulation is untouched:
  // the serialized metrics (every counter, cost, and timeline byte) match.
  EXPECT_EQ(plain_result.metrics.ToJson(2), audited_result.metrics.ToJson(2));
}

TEST_P(DifferentialTest, FullAuditAcrossSeedsReportsZeroViolations) {
  for (uint32_t seed = 0; seed < 3; ++seed) {
    JobSpec spec = SpecFor(GetParam(), seed);
    spec.audit = true;
    const JobResult result = RunJob(spec);
    ASSERT_TRUE(result.audited);
    EXPECT_TRUE(result.audit_report.ok())
        << "seed " << seed << ": " << result.audit_report.ToJson(2);
    EXPECT_GT(result.audit_report.ticks_audited, 0u) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, DifferentialTest,
                         ::testing::Values("memtis", "autonuma", "hemem"));

}  // namespace
}  // namespace memtis
