// Randomised stress tests: interleave every mutation the memory system and
// MEMTIS support and audit the invariants continuously.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/common/json.h"
#include "src/fault/fault.h"
#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/runner/job_codec.h"
#include "src/runner/manifest.h"
#include "src/runner/resilient.h"
#include "src/runner/supervisor.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

// Runs the component-level audit checks over a bare memory system + TLB and
// returns the collected report (empty = all invariants hold).
AuditReport AuditMemorySystem(MemorySystem& mem, const Tlb& tlb) {
  AuditReport report;
  AuditCollector out(&report);
  CheckFrameConservation(mem, out);
  CheckPageTableMapping(mem, out);
  CheckHugePageAccounting(mem, out);
  CheckIncrementalCounters(mem, out);
  CheckTlbCoherence(tlb, mem, out);
  return report;
}

TEST(Fuzz, MemorySystemRandomOps) {
  Rng rng(2024);
  MemorySystem mem(MemoryConfig{.fast_frames = 8192, .capacity_frames = 16384});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  std::vector<Vaddr> regions;

  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 30 || regions.empty()) {
      // Allocate 1-3 huge pages, random tier preference.
      if (mem.tier(TierId::kFast).free_frames() +
              mem.tier(TierId::kCapacity).free_frames() >
          4 * kSubpagesPerHuge) {
        AllocOptions opts;
        opts.preferred = rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
        opts.use_thp = rng.NextBool(0.8);
        regions.push_back(
            mem.AllocateRegion((1 + rng.NextBelow(3)) * kHugePageSize, opts));
      }
    } else if (op < 45) {
      const size_t pick = rng.NextBelow(regions.size());
      mem.FreeRegion(regions[pick]);
      regions[pick] = regions.back();
      regions.pop_back();
    } else if (op < 70) {
      // Migrate a random page of a random region.
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage) {
        mem.Migrate(index, rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity);
      }
    } else if (op < 85) {
      // Split a huge page with random written bits.
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage && mem.page(index).kind() == PageKind::kHuge) {
        PageInfo& page = mem.page(index);
        for (int j = 0; j < 64; ++j) {
          mem.NoteSubpageAccess(page, rng.NextBelow(kSubpagesPerHuge),
                                /*is_write=*/true);
        }
        mem.SplitHugePage(index, [&](uint32_t) {
          return rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
        });
      }
    } else {
      // Demand-fault a random hole if one exists in this region.
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const auto region = mem.RegionAt(base);
      ASSERT_TRUE(region.has_value());
      const Vpn vpn = region->first + rng.NextBelow(region->second);
      if (mem.Lookup(vpn) == kInvalidPage) {
        mem.DemandFault(vpn, AllocOptions{});
      }
    }
    if ((step & 63) == 0) {
      const AuditReport report = AuditMemorySystem(mem, tlb);
      ASSERT_TRUE(report.ok()) << "step " << step << ": " << report.ToJson(2);
    }
  }
  const AuditReport report = AuditMemorySystem(mem, tlb);
  ASSERT_TRUE(report.ok()) << report.ToJson(2);
  // The pool must conserve buffers even after thousands of random ops.
  EXPECT_EQ(mem.huge_meta_allocated(),
            mem.huge_meta_pooled() + mem.RecountLiveHugePages());
}

TEST(Fuzz, ExchangeInterleavesWithEveryOtherMutation) {
  // Random interleavings of exchange / migrate / split / collapse / shrink /
  // free / demand-fault. Exchanges swap frames in place, so any stale frame
  // accounting or missed shootdown they introduce surfaces in the periodic
  // audit sweeps (frame conservation, TLB coherence, exchange counters).
  Rng rng(20260809);
  MemorySystem mem(MemoryConfig{.fast_frames = 4096, .capacity_frames = 16384});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  std::vector<Vaddr> regions;
  uint64_t attempted_exchanges = 0;

  const auto audit_all = [&](int step) {
    AuditReport report = AuditMemorySystem(mem, tlb);
    AuditCollector out(&report);
    // No injector attached: zero injected aborts must pair with zero counted.
    CheckExchangeAccounting(mem, FaultStats{}, out);
    CheckTenantConservation(mem, out);
    ASSERT_TRUE(report.ok()) << "step " << step << ": " << report.ToJson(2);
  };

  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 22 || regions.empty()) {
      if (mem.tier(TierId::kFast).free_frames() +
              mem.tier(TierId::kCapacity).free_frames() >
          4 * kSubpagesPerHuge) {
        AllocOptions opts;
        opts.preferred = rng.NextBool(0.3) ? TierId::kFast : TierId::kCapacity;
        opts.use_thp = rng.NextBool(0.7);
        regions.push_back(
            mem.AllocateRegion((1 + rng.NextBelow(3)) * kHugePageSize, opts));
      }
    } else if (op < 32) {
      const size_t pick = rng.NextBelow(regions.size());
      mem.FreeRegion(regions[pick]);
      regions[pick] = regions.back();
      regions.pop_back();
    } else if (op < 47) {
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage) {
        mem.Migrate(index, rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity);
      }
    } else if (op < 72) {
      // Exchange: pick a random (capacity, fast) pair of the same kind. The
      // candidate scan is deterministic given the RNG, so reruns replay.
      std::vector<PageIndex> hot_side;
      std::vector<PageIndex> cold_side;
      mem.ForEachLivePage([&](PageIndex i, PageInfo& page) {
        (page.tier() == TierId::kCapacity ? hot_side : cold_side).push_back(i);
      });
      if (!hot_side.empty() && !cold_side.empty()) {
        const PageIndex hot = hot_side[rng.NextBelow(hot_side.size())];
        const PageIndex cold = cold_side[rng.NextBelow(cold_side.size())];
        mem.ExchangePages(hot, cold);  // kind mismatches count as failures
        ++attempted_exchanges;
      }
    } else if (op < 82) {
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage && mem.page(index).kind() == PageKind::kHuge) {
        PageInfo& page = mem.page(index);
        for (int j = 0; j < 96; ++j) {
          mem.NoteSubpageAccess(page, rng.NextBelow(kSubpagesPerHuge),
                                /*is_write=*/true);
        }
        mem.SplitHugePage(index, [&](uint32_t) {
          return rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
        });
      }
    } else if (op < 88) {
      // Collapse the first huge span of a region if its 512 children qualify.
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      mem.CollapseToHuge(HugeBaseVpn(VpnOf(base)),
                         rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity);
    } else if (op < 92) {
      // Shrink a tier by a small pinned slice (permanent, like hot-unplug).
      if (mem.pinned_frames_total() < 1024) {
        mem.ShrinkTier(rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity,
                       rng.NextBelow(32));
      }
    } else {
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const auto region = mem.RegionAt(base);
      ASSERT_TRUE(region.has_value());
      const Vpn vpn = region->first + rng.NextBelow(region->second);
      if (mem.Lookup(vpn) == kInvalidPage) {
        mem.DemandFault(vpn, AllocOptions{});
      }
    }
    if ((step & 63) == 0) {
      audit_all(step);
    }
  }
  audit_all(3000);
  // The mix must actually exercise the new primitive, both outcomes included.
  EXPECT_GT(attempted_exchanges, 0u);
  const MigrationStats& stats = mem.migration_stats();
  EXPECT_GT(stats.exchanges, 0u);
  EXPECT_GT(stats.failed_exchanges, 0u);  // wrong-kind / wrong-tier picks
  EXPECT_EQ(stats.aborted_exchanges, 0u);
  EXPECT_EQ(mem.huge_meta_allocated(),
            mem.huge_meta_pooled() + mem.RecountLiveHugePages());
}

TEST(Fuzz, HugePageMetaPoolRecycles) {
  // Split/collapse churn on a steady-state set of huge pages must reuse
  // pooled HugePageMeta buffers instead of growing the allocation count.
  Rng rng(77);
  MemorySystem mem(MemoryConfig{.fast_frames = 8192, .capacity_frames = 8192});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  std::vector<Vaddr> regions;
  for (int i = 0; i < 4; ++i) {
    const Vaddr base = mem.AllocateRegion(kHugePageSize, AllocOptions{});
    regions.push_back(base);
    // Write every subpage so splits keep all 512 children mapped (unwritten
    // subpages would be freed) and collapse preconditions always hold.
    PageInfo& page = mem.page(mem.Lookup(VpnOf(base)));
    for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
      mem.NoteSubpageAccess(page, j, /*is_write=*/true);
    }
  }
  const uint64_t allocated_after_warmup = mem.huge_meta_allocated();
  ASSERT_GE(allocated_after_warmup, 4u);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const Vaddr base = regions[rng.NextBelow(regions.size())];
    const PageIndex index = mem.Lookup(VpnOf(base));
    ASSERT_NE(index, kInvalidPage);
    if (mem.page(index).kind() == PageKind::kHuge) {
      mem.SplitHugePage(index, [&](uint32_t) {
        return rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
      });
    } else {
      ASSERT_TRUE(mem.CollapseToHuge(VpnOf(base), TierId::kFast));
    }
    // Conservation: every buffer is either pooled or owned by a live page.
    ASSERT_EQ(mem.huge_meta_allocated(),
              mem.huge_meta_pooled() + mem.live_huge_pages());
  }
  // Steady-state churn may need at most one extra buffer per collapse in
  // flight; it must not scale with the cycle count.
  EXPECT_LE(mem.huge_meta_allocated(), allocated_after_warmup + regions.size());
  EXPECT_TRUE(mem.CheckConsistency());
  const AuditReport report = AuditMemorySystem(mem, tlb);
  ASSERT_TRUE(report.ok()) << report.ToJson(2);
}

TEST(Fuzz, FaultStormSurvivesEveryPolicy) {
  // Every registered policy must degrade gracefully under a dense fault plan:
  // no crash, no invariant violation. MEMTIS_FAULTS overrides the plan
  // (scripts/check.sh's third pass sets it explicitly; "none" skips).
  const char* env = std::getenv("MEMTIS_FAULTS");
  const std::string spec =
      (env != nullptr && env[0] != '\0') ? env : std::string("storm");
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << spec << ": " << error;
  if (!plan.enabled()) {
    GTEST_SKIP() << "MEMTIS_FAULTS=" << spec << " disables the storm";
  }
  for (const std::string& name : KnownPolicyNames()) {
    for (const uint64_t seed : {11ull, 1011ull}) {
      auto workload = MakeWorkload("btree", 0.12);
      auto policy = MakePolicy(name, workload->footprint_bytes(),
                               workload->footprint_bytes() / 3);
      EngineOptions opts;
      opts.max_accesses = 80'000;
      opts.seed = seed;
      opts.faults = plan;
      AuditSession audit;  // collect mode: report inspected below
      opts.audit = &audit;
      Engine engine(MachineFor(*workload, 1.0 / 3.0), *policy, opts);
      const Metrics metrics = engine.Run(*workload);
      ASSERT_TRUE(audit.report().ok())
          << "reproducer: policy=" << name << " benchmark=btree seed=" << seed
          << " faults=" << plan.ToSpec() << "\n"
          << audit.report().ToJson(2);
      // A dense plan on a live policy must actually exercise the plane.
      EXPECT_GT(metrics.faults.total_injected(), 0u)
          << name << " seed " << seed;
    }
  }
}

// Fuzzes the --resume checkpoint manifest: random specs and outcomes are
// written, random torn/garbage lines are interleaved at the tail, and the
// loader must recover exactly the valid last-wins image — never abort, never
// mistake a truncated record for a completed cell.
TEST(Fuzz, ManifestRoundTripSurvivesTornLines) {
  const std::string path =
      ::testing::TempDir() + "memtis_fuzz_manifest.jsonl";
  std::remove(path.c_str());
  std::mt19937_64 rng(20260807);

  const std::vector<std::string> systems = {"memtis", "autonuma", "hemem"};
  std::map<std::string, bool> expected_ok;        // fingerprint -> ok
  std::map<std::string, std::string> expected_result;  // serialized bytes
  std::vector<std::string> valid_lines;
  size_t lines_written = 0;

  {
    ManifestWriter writer;
    ASSERT_TRUE(writer.Open(path));
    for (int i = 0; i < 64; ++i) {
      JobSpec spec;
      spec.system = systems[rng() % systems.size()];
      spec.benchmark = "btree";
      spec.fast_ratio = 1.0 / static_cast<double>(2 + rng() % 8);
      spec.base_seed = rng() % 4;
      spec.seed_index = static_cast<uint32_t>(rng() % 3);
      spec.accesses = 10'000 + rng() % 50'000;

      SupervisedOutcome outcome;
      outcome.ok = (rng() % 4) != 0;
      outcome.attempts = 1 + static_cast<int>(rng() % 3);
      if (outcome.ok) {
        outcome.result.footprint_bytes = rng();
        outcome.result.fast_bytes = rng();
        outcome.result.mean_ehr =
            static_cast<double>(rng()) / static_cast<double>(rng() | 1);
        outcome.result.metrics.app_ns = rng();
        outcome.result.metrics.fast_accesses = rng();
      } else {
        outcome.failure.kind =
            (rng() % 2) ? FailureKind::kCrash : FailureKind::kTimeout;
        outcome.failure.signal = (rng() % 2) ? 6 : 9;
        outcome.failure.message = "fuzzed failure";
        outcome.failure.stderr_tail = "line1\nline2 \"quoted\"";
      }

      const std::string fp = JobFingerprint(spec);
      writer.Append(fp, spec, outcome);
      ++lines_written;
      expected_ok[fp] = outcome.ok;  // map semantics mirror last-wins
      if (outcome.ok) {
        std::string bytes;
        JsonWriter w(&bytes, 0);
        WriteJobResultJson(w, outcome.result);
        expected_result[fp] = bytes;
      } else {
        expected_result.erase(fp);
      }
    }
    writer.Close();
  }

  // Capture the valid lines so torn variants can be synthesized from them.
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) valid_lines.push_back(line);
    }
    ASSERT_EQ(valid_lines.size(), lines_written);
  }

  // Append garbage: strict prefixes of real records (every nonempty prefix of
  // a one-line JSON object is unparseable) plus free-form junk.
  size_t garbage = 0;
  {
    std::ofstream tail(path, std::ios::app);
    for (int i = 0; i < 16; ++i) {
      const std::string& src = valid_lines[rng() % valid_lines.size()];
      tail << src.substr(0, 1 + rng() % (src.size() - 1)) << "\n";
      ++garbage;
    }
    tail << "not json at all\n";
    ++garbage;
    // And one genuinely torn final record, no trailing newline.
    const std::string& src = valid_lines[0];
    tail << src.substr(0, src.size() / 2);
    ++garbage;
  }

  std::map<std::string, ManifestEntry> loaded;
  ManifestLoadStats stats;
  ASSERT_TRUE(LoadManifest(path, &loaded, &stats));
  EXPECT_EQ(stats.lines_total, lines_written + garbage);
  EXPECT_EQ(stats.lines_skipped, garbage);
  ASSERT_EQ(loaded.size(), expected_ok.size());
  for (const auto& [fp, ok] : expected_ok) {
    ASSERT_NE(loaded.find(fp), loaded.end()) << fp;
    EXPECT_EQ(loaded.at(fp).ok, ok) << fp;
    if (ok) {
      std::string bytes;
      JsonWriter w(&bytes, 0);
      WriteJobResultJson(w, loaded.at(fp).result);
      EXPECT_EQ(bytes, expected_result.at(fp)) << fp;
    }
  }
  std::remove(path.c_str());
}

// A supervised sweep under the dense fault-injection preset: every cell runs
// in a forked child with the storm active and must come back ok — zero parent
// deaths, zero invariant violations, faults actually firing in every cell.
TEST(Fuzz, SupervisedStormSweepKeepsParentAlive) {
  const char* env = std::getenv("MEMTIS_FAULTS");
  const std::string spec =
      (env != nullptr && env[0] != '\0') ? env : std::string("storm");
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << spec << ": " << error;
  if (!plan.enabled()) {
    GTEST_SKIP() << "MEMTIS_FAULTS=" << spec << " disables the storm";
  }

  SweepSpec sweep;
  sweep.systems = {"memtis", "autonuma"};
  sweep.benchmarks = {"btree"};
  sweep.accesses = 60'000;
  sweep.audit = true;
  sweep.faults = spec;
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);

  ExecOptions exec;
  exec.supervise = true;
  ThreadPool pool(4);
  const std::vector<CellOutcome> outcomes = RunJobsResilient(jobs, pool, exec);

  ASSERT_EQ(outcomes.size(), jobs.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok)
        << jobs[i].system << "/" << jobs[i].benchmark << ": "
        << outcomes[i].failure.message << "\n"
        << outcomes[i].failure.stderr_tail;
    EXPECT_EQ(outcomes[i].attempts, 1);
    EXPECT_TRUE(outcomes[i].result.audit_report.ok())
        << outcomes[i].result.audit_report.ToJson(2);
    EXPECT_GT(outcomes[i].result.metrics.faults.total_injected(), 0u)
        << jobs[i].system;
  }
}

class HistogramAuditTest : public ::testing::TestWithParam<std::string> {};

TEST_P(HistogramAuditTest, IncrementalStateMatchesRecomputation) {
  // Run MEMTIS over a benchmark, pausing periodically to recompute both
  // histograms from scratch and compare with the incremental bookkeeping.
  auto workload = MakeWorkload(GetParam(), 0.12);
  MemtisConfig cfg = MemtisConfig::ScaledDefaults(workload->footprint_bytes(),
                                                  workload->footprint_bytes() / 9);
  MemtisPolicy policy(cfg);
  EngineOptions opts;
  opts.max_accesses = 1;
  Engine engine(MachineFor(*workload, 1.0 / 9.0), policy, opts);
  for (uint64_t budget = 150'000; budget <= 1'200'000; budget += 150'000) {
    engine.set_max_accesses(budget);
    engine.Run(*workload);
    AuditReport report;
    AuditCollector out(&report);
    CheckMemtisHistogramsFull(policy, engine.mem(), out);
    CheckMemtisHistogramMass(policy, engine.mem(), out);
    CheckMemtisSampleLedger(policy, out);
    CheckPageTableMapping(engine.mem(), out);
    ASSERT_TRUE(report.ok()) << "at " << budget << ": " << report.ToJson(2);
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, HistogramAuditTest,
                         ::testing::Values("silo", "btree", "pagerank",
                                           "603.bwaves", "xsbench"));

}  // namespace
}  // namespace memtis
