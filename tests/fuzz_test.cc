// Randomised stress tests: interleave every mutation the memory system and
// MEMTIS support and audit the invariants continuously.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "src/audit/audit.h"
#include "src/common/json.h"
#include "src/common/json_parse.h"
#include "src/common/netio.h"
#include "src/runner/coordinator.h"
#include "src/runner/work_queue.h"
#include "src/runner/worker.h"
#include "src/fault/fault.h"
#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/runner/job_codec.h"
#include "src/runner/manifest.h"
#include "src/runner/resilient.h"
#include "src/runner/supervisor.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"
#include "src/snapshot/serializer.h"
#include "src/snapshot/snapshot_file.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

// Runs the component-level audit checks over a bare memory system + TLB and
// returns the collected report (empty = all invariants hold).
AuditReport AuditMemorySystem(MemorySystem& mem, const Tlb& tlb) {
  AuditReport report;
  AuditCollector out(&report);
  CheckFrameConservation(mem, out);
  CheckPageTableMapping(mem, out);
  CheckHugePageAccounting(mem, out);
  CheckIncrementalCounters(mem, out);
  CheckTlbCoherence(tlb, mem, out);
  return report;
}

TEST(Fuzz, MemorySystemRandomOps) {
  Rng rng(2024);
  MemorySystem mem(MemoryConfig{.fast_frames = 8192, .capacity_frames = 16384});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  std::vector<Vaddr> regions;

  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 30 || regions.empty()) {
      // Allocate 1-3 huge pages, random tier preference.
      if (mem.tier(TierId::kFast).free_frames() +
              mem.tier(TierId::kCapacity).free_frames() >
          4 * kSubpagesPerHuge) {
        AllocOptions opts;
        opts.preferred = rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
        opts.use_thp = rng.NextBool(0.8);
        regions.push_back(
            mem.AllocateRegion((1 + rng.NextBelow(3)) * kHugePageSize, opts));
      }
    } else if (op < 45) {
      const size_t pick = rng.NextBelow(regions.size());
      mem.FreeRegion(regions[pick]);
      regions[pick] = regions.back();
      regions.pop_back();
    } else if (op < 70) {
      // Migrate a random page of a random region.
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage) {
        mem.Migrate(index, rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity);
      }
    } else if (op < 85) {
      // Split a huge page with random written bits.
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage && mem.page(index).kind() == PageKind::kHuge) {
        PageInfo& page = mem.page(index);
        for (int j = 0; j < 64; ++j) {
          mem.NoteSubpageAccess(page, rng.NextBelow(kSubpagesPerHuge),
                                /*is_write=*/true);
        }
        mem.SplitHugePage(index, [&](uint32_t) {
          return rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
        });
      }
    } else {
      // Demand-fault a random hole if one exists in this region.
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const auto region = mem.RegionAt(base);
      ASSERT_TRUE(region.has_value());
      const Vpn vpn = region->first + rng.NextBelow(region->second);
      if (mem.Lookup(vpn) == kInvalidPage) {
        mem.DemandFault(vpn, AllocOptions{});
      }
    }
    if ((step & 63) == 0) {
      const AuditReport report = AuditMemorySystem(mem, tlb);
      ASSERT_TRUE(report.ok()) << "step " << step << ": " << report.ToJson(2);
    }
  }
  const AuditReport report = AuditMemorySystem(mem, tlb);
  ASSERT_TRUE(report.ok()) << report.ToJson(2);
  // The pool must conserve buffers even after thousands of random ops.
  EXPECT_EQ(mem.huge_meta_allocated(),
            mem.huge_meta_pooled() + mem.RecountLiveHugePages());
}

TEST(Fuzz, ExchangeInterleavesWithEveryOtherMutation) {
  // Random interleavings of exchange / migrate / split / collapse / shrink /
  // free / demand-fault. Exchanges swap frames in place, so any stale frame
  // accounting or missed shootdown they introduce surfaces in the periodic
  // audit sweeps (frame conservation, TLB coherence, exchange counters).
  Rng rng(20260809);
  MemorySystem mem(MemoryConfig{.fast_frames = 4096, .capacity_frames = 16384});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  std::vector<Vaddr> regions;
  uint64_t attempted_exchanges = 0;

  const auto audit_all = [&](int step) {
    AuditReport report = AuditMemorySystem(mem, tlb);
    AuditCollector out(&report);
    // No injector attached: zero injected aborts must pair with zero counted.
    CheckExchangeAccounting(mem, FaultStats{}, out);
    CheckTenantConservation(mem, out);
    ASSERT_TRUE(report.ok()) << "step " << step << ": " << report.ToJson(2);
  };

  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 22 || regions.empty()) {
      if (mem.tier(TierId::kFast).free_frames() +
              mem.tier(TierId::kCapacity).free_frames() >
          4 * kSubpagesPerHuge) {
        AllocOptions opts;
        opts.preferred = rng.NextBool(0.3) ? TierId::kFast : TierId::kCapacity;
        opts.use_thp = rng.NextBool(0.7);
        regions.push_back(
            mem.AllocateRegion((1 + rng.NextBelow(3)) * kHugePageSize, opts));
      }
    } else if (op < 32) {
      const size_t pick = rng.NextBelow(regions.size());
      mem.FreeRegion(regions[pick]);
      regions[pick] = regions.back();
      regions.pop_back();
    } else if (op < 47) {
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage) {
        mem.Migrate(index, rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity);
      }
    } else if (op < 72) {
      // Exchange: pick a random (capacity, fast) pair of the same kind. The
      // candidate scan is deterministic given the RNG, so reruns replay.
      std::vector<PageIndex> hot_side;
      std::vector<PageIndex> cold_side;
      mem.ForEachLivePage([&](PageIndex i, PageInfo& page) {
        (page.tier() == TierId::kCapacity ? hot_side : cold_side).push_back(i);
      });
      if (!hot_side.empty() && !cold_side.empty()) {
        const PageIndex hot = hot_side[rng.NextBelow(hot_side.size())];
        const PageIndex cold = cold_side[rng.NextBelow(cold_side.size())];
        mem.ExchangePages(hot, cold);  // kind mismatches count as failures
        ++attempted_exchanges;
      }
    } else if (op < 82) {
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage && mem.page(index).kind() == PageKind::kHuge) {
        PageInfo& page = mem.page(index);
        for (int j = 0; j < 96; ++j) {
          mem.NoteSubpageAccess(page, rng.NextBelow(kSubpagesPerHuge),
                                /*is_write=*/true);
        }
        mem.SplitHugePage(index, [&](uint32_t) {
          return rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
        });
      }
    } else if (op < 88) {
      // Collapse the first huge span of a region if its 512 children qualify.
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      mem.CollapseToHuge(HugeBaseVpn(VpnOf(base)),
                         rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity);
    } else if (op < 92) {
      // Shrink a tier by a small pinned slice (permanent, like hot-unplug).
      if (mem.pinned_frames_total() < 1024) {
        mem.ShrinkTier(rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity,
                       rng.NextBelow(32));
      }
    } else {
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const auto region = mem.RegionAt(base);
      ASSERT_TRUE(region.has_value());
      const Vpn vpn = region->first + rng.NextBelow(region->second);
      if (mem.Lookup(vpn) == kInvalidPage) {
        mem.DemandFault(vpn, AllocOptions{});
      }
    }
    if ((step & 63) == 0) {
      audit_all(step);
    }
  }
  audit_all(3000);
  // The mix must actually exercise the new primitive, both outcomes included.
  EXPECT_GT(attempted_exchanges, 0u);
  const MigrationStats& stats = mem.migration_stats();
  EXPECT_GT(stats.exchanges, 0u);
  EXPECT_GT(stats.failed_exchanges, 0u);  // wrong-kind / wrong-tier picks
  EXPECT_EQ(stats.aborted_exchanges, 0u);
  EXPECT_EQ(mem.huge_meta_allocated(),
            mem.huge_meta_pooled() + mem.RecountLiveHugePages());
}

TEST(Fuzz, HugePageMetaPoolRecycles) {
  // Split/collapse churn on a steady-state set of huge pages must reuse
  // pooled HugePageMeta buffers instead of growing the allocation count.
  Rng rng(77);
  MemorySystem mem(MemoryConfig{.fast_frames = 8192, .capacity_frames = 8192});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  std::vector<Vaddr> regions;
  for (int i = 0; i < 4; ++i) {
    const Vaddr base = mem.AllocateRegion(kHugePageSize, AllocOptions{});
    regions.push_back(base);
    // Write every subpage so splits keep all 512 children mapped (unwritten
    // subpages would be freed) and collapse preconditions always hold.
    PageInfo& page = mem.page(mem.Lookup(VpnOf(base)));
    for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
      mem.NoteSubpageAccess(page, j, /*is_write=*/true);
    }
  }
  const uint64_t allocated_after_warmup = mem.huge_meta_allocated();
  ASSERT_GE(allocated_after_warmup, 4u);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const Vaddr base = regions[rng.NextBelow(regions.size())];
    const PageIndex index = mem.Lookup(VpnOf(base));
    ASSERT_NE(index, kInvalidPage);
    if (mem.page(index).kind() == PageKind::kHuge) {
      mem.SplitHugePage(index, [&](uint32_t) {
        return rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
      });
    } else {
      ASSERT_TRUE(mem.CollapseToHuge(VpnOf(base), TierId::kFast));
    }
    // Conservation: every buffer is either pooled or owned by a live page.
    ASSERT_EQ(mem.huge_meta_allocated(),
              mem.huge_meta_pooled() + mem.live_huge_pages());
  }
  // Steady-state churn may need at most one extra buffer per collapse in
  // flight; it must not scale with the cycle count.
  EXPECT_LE(mem.huge_meta_allocated(), allocated_after_warmup + regions.size());
  EXPECT_TRUE(mem.CheckConsistency());
  const AuditReport report = AuditMemorySystem(mem, tlb);
  ASSERT_TRUE(report.ok()) << report.ToJson(2);
}

TEST(Fuzz, FaultStormSurvivesEveryPolicy) {
  // Every registered policy must degrade gracefully under a dense fault plan:
  // no crash, no invariant violation. MEMTIS_FAULTS overrides the plan
  // (scripts/check.sh's third pass sets it explicitly; "none" skips).
  const char* env = std::getenv("MEMTIS_FAULTS");
  const std::string spec =
      (env != nullptr && env[0] != '\0') ? env : std::string("storm");
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << spec << ": " << error;
  if (!plan.enabled()) {
    GTEST_SKIP() << "MEMTIS_FAULTS=" << spec << " disables the storm";
  }
  for (const std::string& name : KnownPolicyNames()) {
    for (const uint64_t seed : {11ull, 1011ull}) {
      auto workload = MakeWorkload("btree", 0.12);
      auto policy = MakePolicy(name, workload->footprint_bytes(),
                               workload->footprint_bytes() / 3);
      EngineOptions opts;
      opts.max_accesses = 80'000;
      opts.seed = seed;
      opts.faults = plan;
      AuditSession audit;  // collect mode: report inspected below
      opts.audit = &audit;
      Engine engine(MachineFor(*workload, 1.0 / 3.0), *policy, opts);
      const Metrics metrics = engine.Run(*workload);
      ASSERT_TRUE(audit.report().ok())
          << "reproducer: policy=" << name << " benchmark=btree seed=" << seed
          << " faults=" << plan.ToSpec() << "\n"
          << audit.report().ToJson(2);
      // A dense plan on a live policy must actually exercise the plane.
      EXPECT_GT(metrics.faults.total_injected(), 0u)
          << name << " seed " << seed;
    }
  }
}

// Fuzzes the --resume checkpoint manifest: random specs and outcomes are
// written, random torn/garbage lines are interleaved at the tail, and the
// loader must recover exactly the valid last-wins image — never abort, never
// mistake a truncated record for a completed cell.
TEST(Fuzz, ManifestRoundTripSurvivesTornLines) {
  const std::string path =
      ::testing::TempDir() + "memtis_fuzz_manifest.jsonl";
  std::remove(path.c_str());
  std::mt19937_64 rng(20260807);

  const std::vector<std::string> systems = {"memtis", "autonuma", "hemem"};
  std::map<std::string, bool> expected_ok;        // fingerprint -> ok
  std::map<std::string, std::string> expected_result;  // serialized bytes
  std::vector<std::string> valid_lines;
  size_t lines_written = 0;

  {
    ManifestWriter writer;
    ASSERT_TRUE(writer.Open(path));
    for (int i = 0; i < 64; ++i) {
      JobSpec spec;
      spec.system = systems[rng() % systems.size()];
      spec.benchmark = "btree";
      spec.fast_ratio = 1.0 / static_cast<double>(2 + rng() % 8);
      spec.base_seed = rng() % 4;
      spec.seed_index = static_cast<uint32_t>(rng() % 3);
      spec.accesses = 10'000 + rng() % 50'000;

      SupervisedOutcome outcome;
      outcome.ok = (rng() % 4) != 0;
      outcome.attempts = 1 + static_cast<int>(rng() % 3);
      if (outcome.ok) {
        outcome.result.footprint_bytes = rng();
        outcome.result.fast_bytes = rng();
        outcome.result.mean_ehr =
            static_cast<double>(rng()) / static_cast<double>(rng() | 1);
        outcome.result.metrics.app_ns = rng();
        outcome.result.metrics.fast_accesses = rng();
      } else {
        outcome.failure.kind =
            (rng() % 2) ? FailureKind::kCrash : FailureKind::kTimeout;
        outcome.failure.signal = (rng() % 2) ? 6 : 9;
        outcome.failure.message = "fuzzed failure";
        outcome.failure.stderr_tail = "line1\nline2 \"quoted\"";
      }

      const std::string fp = JobFingerprint(spec);
      writer.Append(fp, spec, outcome);
      ++lines_written;
      expected_ok[fp] = outcome.ok;  // map semantics mirror last-wins
      if (outcome.ok) {
        std::string bytes;
        JsonWriter w(&bytes, 0);
        WriteJobResultJson(w, outcome.result);
        expected_result[fp] = bytes;
      } else {
        expected_result.erase(fp);
      }
    }
    writer.Close();
  }

  // Capture the valid lines so torn variants can be synthesized from them.
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) valid_lines.push_back(line);
    }
    ASSERT_EQ(valid_lines.size(), lines_written);
  }

  // Append garbage: strict prefixes of real records (every nonempty prefix of
  // a one-line JSON object is unparseable) plus free-form junk.
  size_t garbage = 0;
  {
    std::ofstream tail(path, std::ios::app);
    for (int i = 0; i < 16; ++i) {
      const std::string& src = valid_lines[rng() % valid_lines.size()];
      tail << src.substr(0, 1 + rng() % (src.size() - 1)) << "\n";
      ++garbage;
    }
    tail << "not json at all\n";
    ++garbage;
    // And one genuinely torn final record, no trailing newline.
    const std::string& src = valid_lines[0];
    tail << src.substr(0, src.size() / 2);
    ++garbage;
  }

  std::map<std::string, ManifestEntry> loaded;
  ManifestLoadStats stats;
  ASSERT_TRUE(LoadManifest(path, &loaded, &stats));
  EXPECT_EQ(stats.lines_total, lines_written + garbage);
  EXPECT_EQ(stats.lines_skipped, garbage);
  ASSERT_EQ(loaded.size(), expected_ok.size());
  for (const auto& [fp, ok] : expected_ok) {
    ASSERT_NE(loaded.find(fp), loaded.end()) << fp;
    EXPECT_EQ(loaded.at(fp).ok, ok) << fp;
    if (ok) {
      std::string bytes;
      JsonWriter w(&bytes, 0);
      WriteJobResultJson(w, loaded.at(fp).result);
      EXPECT_EQ(bytes, expected_result.at(fp)) << fp;
    }
  }
  std::remove(path.c_str());
}

// A supervised sweep under the dense fault-injection preset: every cell runs
// in a forked child with the storm active and must come back ok — zero parent
// deaths, zero invariant violations, faults actually firing in every cell.
TEST(Fuzz, SupervisedStormSweepKeepsParentAlive) {
  const char* env = std::getenv("MEMTIS_FAULTS");
  const std::string spec =
      (env != nullptr && env[0] != '\0') ? env : std::string("storm");
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << spec << ": " << error;
  if (!plan.enabled()) {
    GTEST_SKIP() << "MEMTIS_FAULTS=" << spec << " disables the storm";
  }

  SweepSpec sweep;
  sweep.systems = {"memtis", "autonuma"};
  sweep.benchmarks = {"btree"};
  sweep.accesses = 60'000;
  sweep.audit = true;
  sweep.faults = spec;
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);

  ExecOptions exec;
  exec.supervise = true;
  ThreadPool pool(4);
  const std::vector<CellOutcome> outcomes = RunJobsResilient(jobs, pool, exec);

  ASSERT_EQ(outcomes.size(), jobs.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok)
        << jobs[i].system << "/" << jobs[i].benchmark << ": "
        << outcomes[i].failure.message << "\n"
        << outcomes[i].failure.stderr_tail;
    EXPECT_EQ(outcomes[i].attempts, 1);
    EXPECT_TRUE(outcomes[i].result.audit_report.ok())
        << outcomes[i].result.audit_report.ToJson(2);
    EXPECT_GT(outcomes[i].result.metrics.faults.total_injected(), 0u)
        << jobs[i].system;
  }
}

// ---------------------------------------------------------------------------
// Distributed-campaign wire and on-disk fuzzing: truncated, garbled, and
// duplicated frames — and torn queue-directory files — must yield parse
// failures and structured recovery, never an abort.

std::string SerializeResult(const JobResult& result) {
  std::string out;
  JsonWriter w(&out, 0);
  WriteJobResultJson(w, result);
  return out;
}

TEST(Fuzz, FrameDecoderSurvivesGarbageTruncationAndSplits) {
  // A valid frame split at every possible boundary still decodes.
  const std::string payload = "{\"type\":\"claim\",\"worker\":\"fuzz\"}";
  const std::string frame = EncodeFrame(payload);
  for (size_t split = 0; split <= frame.size(); ++split) {
    FrameDecoder decoder;
    decoder.Feed(frame.data(), split);
    std::string out;
    EXPECT_FALSE(decoder.bad());
    const bool early = decoder.Next(&out);
    EXPECT_EQ(early, split == frame.size());
    decoder.Feed(frame.data() + split, frame.size() - split);
    if (!early) {
      ASSERT_TRUE(decoder.Next(&out));
    }
    EXPECT_EQ(out, payload);
  }

  // Truncation: any prefix of the frame yields no output and no badness.
  for (size_t len = 0; len < frame.size(); ++len) {
    FrameDecoder decoder;
    decoder.Feed(frame.data(), len);
    std::string out;
    EXPECT_FALSE(decoder.Next(&out));
    EXPECT_FALSE(decoder.bad());
  }

  // An oversize length prefix poisons the decoder instead of allocating.
  {
    FrameDecoder decoder;
    const unsigned char huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    decoder.Feed(reinterpret_cast<const char*>(huge), 4);
    std::string out;
    EXPECT_FALSE(decoder.Next(&out));
    EXPECT_TRUE(decoder.bad());
  }

  // Random byte soup: frames may decode (any 4-byte prefix is a length) but
  // nothing crashes, and buffering stays bounded by what was fed.
  std::mt19937_64 rng(20260809);
  for (int round = 0; round < 64; ++round) {
    FrameDecoder decoder;
    size_t fed = 0;
    for (int chunk = 0; chunk < 16 && !decoder.bad(); ++chunk) {
      std::string bytes(1 + rng() % 64, '\0');
      for (char& c : bytes) {
        c = static_cast<char>(rng());
      }
      decoder.Feed(bytes.data(), bytes.size());
      fed += bytes.size();
      std::string out;
      while (decoder.Next(&out)) {
      }
      EXPECT_LE(decoder.buffered_bytes(), fed);
    }
  }
}

TEST(Fuzz, ProtocolParsersNeverAbortOnMutatedFrames) {
  JobSpec spec;
  spec.system = "memtis";
  spec.benchmark = "btree";
  spec.accesses = 10'000;
  WorkItem item;
  item.index = 2;
  item.attempt = 1;
  item.issue = 3;
  item.fingerprint = JobFingerprint(spec);
  item.spec = spec;
  SupervisedOutcome outcome;
  outcome.ok = true;
  outcome.attempts = 2;

  std::vector<std::string> seeds = {
      EncodeClaimRequest("w0"),
      EncodeRenewRequest(item),
      EncodeResultRequest("w0", item, outcome),
      EncodeCellReply(item),
      EncodeSimpleReply(CoordinatorReply::Kind::kDone),
      EncodeErrorReply("boom"),
      "",
      "{",
      "[1,2,3]",
      "null",
      "{\"type\":\"claim\"",
      "{\"type\":\"result\",\"index\":0}",
      "{\"type\":\"cell\",\"index\":0,\"spec\":7}",
      "{\"type\":\"nonsense\"}",
  };
  std::mt19937_64 rng(4242);
  WorkerRequest req;
  CoordinatorReply reply;
  std::string error;
  for (const std::string& seed : seeds) {
    // The pristine seed, every truncation of it, and byte-flipped variants:
    // parsers must return true or false, never crash or abort.
    for (size_t len = 0; len <= seed.size(); ++len) {
      const std::string t = seed.substr(0, len);
      ParseWorkerRequest(t, &req, &error);
      ParseCoordinatorReply(t, &reply, &error);
    }
    for (int round = 0; round < 32; ++round) {
      std::string mutated = seed + seed;  // duplicated content
      if (!mutated.empty()) {
        for (int flips = 0; flips < 3; ++flips) {
          mutated[rng() % mutated.size()] = static_cast<char>(rng());
        }
      }
      ParseWorkerRequest(mutated, &req, &error);
      ParseCoordinatorReply(mutated, &reply, &error);
    }
  }

  // Structurally valid results with out-of-range numerics parse (or are
  // rejected) without aborting; attempts < 1 must be rejected.
  EXPECT_FALSE(ParseWorkerRequest(
      "{\"type\":\"result\",\"worker\":\"w\",\"index\":0,\"attempt\":0,"
      "\"issue\":0,\"ok\":true,\"attempts\":0,\"result\":{}}",
      &req, &error));
}

TEST(Fuzz, CoordinatorSurvivesGarbageClients) {
  SweepSpec sweep;
  sweep.systems = {"memtis"};
  sweep.benchmarks = {"btree"};
  sweep.accesses = 20'000;
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);

  std::promise<uint16_t> port_promise;
  std::shared_future<uint16_t> port(port_promise.get_future());
  CampaignStats stats;
  std::string serve_error;
  std::vector<CellOutcome> outcomes;
  std::thread coordinator([&] {
    outcomes = ServeSocketCampaign(
        jobs, CampaignOptions{}, 0,
        [&](uint16_t bound) { port_promise.set_value(bound); }, {}, nullptr,
        &stats, &serve_error);
  });

  // A parade of hostile clients: raw garbage, a garbled frame, an oversize
  // length prefix, and an instant hangup. Each should cost only its own
  // connection.
  std::mt19937_64 rng(7);
  for (int client = 0; client < 8; ++client) {
    std::string error;
    const int fd = ConnectLoopback(std::to_string(port.get()), &error);
    ASSERT_GE(fd, 0) << error;
    std::string bytes;
    switch (client % 4) {
      case 0:  // random soup
        bytes.resize(64 + rng() % 256);
        for (char& c : bytes) c = static_cast<char>(rng());
        break;
      case 1:  // well-framed non-JSON
        bytes = EncodeFrame("!!not json!!");
        break;
      case 2: {  // oversize length prefix
        const unsigned char huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
        bytes.assign(reinterpret_cast<const char*>(huge), 4);
        break;
      }
      case 3:  // connect-and-slam
        break;
    }
    if (!bytes.empty()) {
      send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    }
    close(fd);
  }

  // A healthy worker still completes the campaign.
  std::string error;
  auto queue =
      MakeSocketWorkQueue(std::to_string(port.get()), "healthy", 5'000, &error);
  ASSERT_NE(queue, nullptr) << error;
  WorkerOptions wopts;
  wopts.name = "healthy";
  EXPECT_EQ(RunWorker(*queue, wopts), 0);
  coordinator.join();

  ASSERT_TRUE(serve_error.empty()) << serve_error;
  ASSERT_EQ(outcomes.size(), jobs.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].failure.message;
    EXPECT_EQ(SerializeResult(outcomes[i].result),
              SerializeResult(RunJob(jobs[i])));
  }
}

TEST(Fuzz, FileQueueSurvivesTornTailsAndJunkClaims) {
  SweepSpec sweep;
  sweep.systems = {"memtis", "autonuma"};
  sweep.benchmarks = {"btree"};
  sweep.accesses = 20'000;
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);

  const std::string dir = ::testing::TempDir() + "memtis_fuzz_queue";
  std::system(("rm -rf '" + dir + "' && mkdir -p '" + dir + "'").c_str());

  // Seed the directory with wreckage a crashed fleet could leave behind:
  // a torn results tail, junk and duplicated reissue lines, a claim file for
  // a nonexistent cell, and a garbage-content claim squatting on cell 0.
  {
    std::ofstream torn(WorkerResultsPath(dir, "dead"));
    torn << "{\"v\":1,\"fingerprint\":\"deadbeef\",\"ok\":true";  // no newline
  }
  {
    std::ofstream reissue(ReissueFilePath(dir));
    reissue << "not json at all\n"
            << "{\"index\":\n"
            << "{}\n";
  }
  {
    std::ofstream bogus(ClaimFilePath(dir, 999, 0, 0));
    bogus << "ghost\n";
  }
  {
    std::ofstream squatter(ClaimFilePath(dir, 0, 0, 0));
    squatter << std::string(512, '\xFF') << "\n";
  }

  CampaignOptions options;
  options.lease_timeout_ms = 300;  // evict the squatter quickly
  CampaignStats stats;
  std::string serve_error;
  std::vector<CellOutcome> outcomes;
  std::thread coordinator([&] {
    outcomes = ServeFileCampaign(jobs, dir, options, {}, nullptr, &stats,
                                 &serve_error);
  });
  std::string error;
  auto queue = MakeFileWorkQueue(dir, "healthy", 30'000, &error);
  ASSERT_NE(queue, nullptr) << error;
  WorkerOptions wopts;
  wopts.name = "healthy";
  EXPECT_EQ(RunWorker(*queue, wopts), 0);
  coordinator.join();

  ASSERT_TRUE(serve_error.empty()) << serve_error;
  EXPECT_GE(stats.leases_lost, 1u);  // the squatting claim was revoked
  ASSERT_EQ(outcomes.size(), jobs.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].failure.message;
    EXPECT_EQ(SerializeResult(outcomes[i].result),
              SerializeResult(RunJob(jobs[i])));
  }
}

TEST(Fuzz, JobSpecJsonRoundTripPreservesFingerprint) {
  std::mt19937_64 rng(20260808);
  const std::vector<std::string> systems = {"memtis", "autonuma", "hemem",
                                            "nobody\"quoted\\name"};
  for (int round = 0; round < 128; ++round) {
    JobSpec spec;
    spec.system = systems[rng() % systems.size()];
    spec.benchmark = "btree";
    spec.fast_ratio = 1.0 / static_cast<double>(2 + rng() % 9);
    spec.cxl = (rng() % 2) != 0;
    spec.cpu_contention = (rng() % 2) != 0;
    spec.accesses = rng() % 100'000;
    spec.snapshot_interval_ns = rng() % 2 ? 0 : rng();
    spec.fast_bytes_override = rng() % 2 ? 0 : rng();
    spec.footprint_scale = 0.5 + static_cast<double>(rng() % 1000) / 100.0;
    spec.base_seed = rng();
    spec.seed_index = static_cast<uint32_t>(rng() % 16);
    spec.engine_seed = rng();
    spec.audit = (rng() % 2) != 0;
    spec.audit_epoch_interval_ns = rng() % 2 ? 0 : rng() % 1'000'000;
    spec.shards = 1 + static_cast<uint32_t>(rng() % 4);
    spec.faults = rng() % 2 ? "" : "migrate-abort=0.1,seed=7";

    std::string bytes;
    JsonWriter w(&bytes, 0);
    WriteJobSpecJson(w, spec);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(bytes, &doc, &error)) << error;
    JobSpec back;
    ASSERT_TRUE(ReadJobSpecJson(doc, &back)) << bytes;
    EXPECT_EQ(JobFingerprint(back), JobFingerprint(spec)) << bytes;
  }

  // Garbage documents are rejected, not aborted on.
  for (const char* text :
       {"null", "[]", "{}", "{\"system\":\"\"}", "{\"system\":7}",
        "{\"system\":\"memtis\"}"}) {
    JsonValue doc;
    if (JsonValue::Parse(text, &doc, nullptr)) {
      JobSpec back;
      ReadJobSpecJson(doc, &back);  // false or harmless true; never aborts
    }
  }
}

class HistogramAuditTest : public ::testing::TestWithParam<std::string> {};

TEST_P(HistogramAuditTest, IncrementalStateMatchesRecomputation) {
  // Run MEMTIS over a benchmark, pausing periodically to recompute both
  // histograms from scratch and compare with the incremental bookkeeping.
  auto workload = MakeWorkload(GetParam(), 0.12);
  MemtisConfig cfg = MemtisConfig::ScaledDefaults(workload->footprint_bytes(),
                                                  workload->footprint_bytes() / 9);
  MemtisPolicy policy(cfg);
  EngineOptions opts;
  opts.max_accesses = 1;
  Engine engine(MachineFor(*workload, 1.0 / 9.0), policy, opts);
  for (uint64_t budget = 150'000; budget <= 1'200'000; budget += 150'000) {
    engine.set_max_accesses(budget);
    engine.Run(*workload);
    AuditReport report;
    AuditCollector out(&report);
    CheckMemtisHistogramsFull(policy, engine.mem(), out);
    CheckMemtisHistogramMass(policy, engine.mem(), out);
    CheckMemtisSampleLedger(policy, out);
    CheckPageTableMapping(engine.mem(), out);
    ASSERT_TRUE(report.ok()) << "at " << budget << ": " << report.ToJson(2);
  }
}

// The snapshot loader is the one parser that runs on bytes a SIGKILL may
// have torn mid-write: whatever it is fed, it must either decode the exact
// blob that was encoded or refuse — never crash, never return a mangled
// blob. Fuzz every corruption class the checkpoint plane defends against.
TEST(Fuzz, SnapshotLoaderSurvivesArbitraryCorruption) {
  std::mt19937_64 rng(20260809);

  for (int trial = 0; trial < 64; ++trial) {
    SnapshotBlob blob;
    blob.fingerprint = std::to_string(rng());
    blob.attempt = static_cast<uint32_t>(rng() % 4);
    blob.sequence = rng();
    blob.payload.resize(1 + rng() % 4096);
    for (char& c : blob.payload) {
      c = static_cast<char>(rng());
    }
    const std::string image = EncodeSnapshot(blob);

    SnapshotBlob out;
    std::string error;
    ASSERT_TRUE(DecodeSnapshot(image, &out, &error)) << error;
    ASSERT_EQ(out.payload, blob.payload);

    // Torn tail: a random strict prefix (what a crash mid-write leaves when
    // the atomic rename never happened).
    const size_t cut = rng() % image.size();
    EXPECT_FALSE(DecodeSnapshot(image.substr(0, cut), &out, &error))
        << "prefix " << cut << "/" << image.size() << " decoded";

    // Single random bit flip anywhere in the image.
    std::string flipped = image;
    const size_t pos = rng() % flipped.size();
    flipped[pos] = static_cast<char>(flipped[pos] ^ (1u << (rng() % 8)));
    EXPECT_FALSE(DecodeSnapshot(flipped, &out, &error))
        << "bit flip at " << pos << " decoded";

    // Appended garbage after a valid image.
    std::string padded = image;
    padded.append(1 + rng() % 16, static_cast<char>(rng()));
    EXPECT_FALSE(DecodeSnapshot(padded, &out, &error));

    // Version skew with a recomputed (valid) CRC: only the version check can
    // reject it, and it must.
    std::string skewed = image;
    skewed[4] = static_cast<char>(skewed[4] + 1 + rng() % 16);
    const uint32_t crc =
        Crc32(std::string_view(skewed.data(), skewed.size() - 4));
    for (int i = 0; i < 4; ++i) {
      skewed[skewed.size() - 4 + static_cast<size_t>(i)] =
          static_cast<char>((crc >> (8 * i)) & 0xFF);
    }
    EXPECT_FALSE(DecodeSnapshot(skewed, &out, &error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
  }

  // Pure garbage of assorted lengths must also bounce off the loader.
  for (int trial = 0; trial < 256; ++trial) {
    std::string junk(rng() % 512, '\0');
    for (char& c : junk) {
      c = static_cast<char>(rng());
    }
    SnapshotBlob out;
    EXPECT_FALSE(DecodeSnapshot(junk, &out, nullptr));
  }
}

// A SnapshotStore facing a corrupted newest slot must quarantine it and fall
// back to the older valid snapshot — fuzzing the damage location this time.
TEST(Fuzz, SnapshotStoreFallsBackFromFuzzedSlotDamage) {
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 16; ++trial) {
    const std::string dir = ::testing::TempDir() + "memtis_fuzz_snapstore";
    std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    const std::string base = dir + "/cell.ckpt";

    SnapshotStore store(base);
    std::string error;
    ASSERT_TRUE(store.Write("fp", 0, "older-good", &error)) << error;
    ASSERT_TRUE(store.Write("fp", 0, "newer-good", &error)) << error;

    // Find the slot holding the newest snapshot and damage a random byte (or
    // tear it at a random offset — alternate per trial).
    bool damaged = false;
    for (int slot = 0; slot < 2 && !damaged; ++slot) {
      const std::string path = SnapshotStore::SlotPath(base, slot);
      std::ifstream in(path, std::ios::binary);
      if (!in.is_open()) continue;
      std::string image((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      SnapshotBlob blob;
      if (!DecodeSnapshot(image, &blob, nullptr) ||
          blob.payload != "newer-good") {
        continue;
      }
      if (trial % 2 == 0) {
        image[rng() % image.size()] ^= static_cast<char>(1u << (rng() % 8));
      } else {
        image.resize(rng() % image.size());  // torn write
      }
      std::ofstream(path, std::ios::binary | std::ios::trunc)
          .write(image.data(), static_cast<long>(image.size()));
      damaged = true;
    }
    ASSERT_TRUE(damaged) << "newest slot not found";

    SnapshotStore reader(base);
    SnapshotBlob fallback;
    ASSERT_TRUE(reader.LoadNewest("fp", 0, &fallback)) << "trial " << trial;
    EXPECT_EQ(fallback.payload, "older-good");
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, HistogramAuditTest,
                         ::testing::Values("silo", "btree", "pagerank",
                                           "603.bwaves", "xsbench"));

}  // namespace
}  // namespace memtis
