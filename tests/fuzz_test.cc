// Randomised stress tests: interleave every mutation the memory system and
// MEMTIS support and audit the invariants continuously.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/fault/fault.h"
#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

// Runs the component-level audit checks over a bare memory system + TLB and
// returns the collected report (empty = all invariants hold).
AuditReport AuditMemorySystem(MemorySystem& mem, const Tlb& tlb) {
  AuditReport report;
  AuditCollector out(&report);
  CheckFrameConservation(mem, out);
  CheckPageTableMapping(mem, out);
  CheckHugePageAccounting(mem, out);
  CheckIncrementalCounters(mem, out);
  CheckTlbCoherence(tlb, mem, out);
  return report;
}

TEST(Fuzz, MemorySystemRandomOps) {
  Rng rng(2024);
  MemorySystem mem(MemoryConfig{.fast_frames = 8192, .capacity_frames = 16384});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  std::vector<Vaddr> regions;

  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 30 || regions.empty()) {
      // Allocate 1-3 huge pages, random tier preference.
      if (mem.tier(TierId::kFast).free_frames() +
              mem.tier(TierId::kCapacity).free_frames() >
          4 * kSubpagesPerHuge) {
        AllocOptions opts;
        opts.preferred = rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
        opts.use_thp = rng.NextBool(0.8);
        regions.push_back(
            mem.AllocateRegion((1 + rng.NextBelow(3)) * kHugePageSize, opts));
      }
    } else if (op < 45) {
      const size_t pick = rng.NextBelow(regions.size());
      mem.FreeRegion(regions[pick]);
      regions[pick] = regions.back();
      regions.pop_back();
    } else if (op < 70) {
      // Migrate a random page of a random region.
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage) {
        mem.Migrate(index, rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity);
      }
    } else if (op < 85) {
      // Split a huge page with random written bits.
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const PageIndex index = mem.Lookup(VpnOf(base));
      if (index != kInvalidPage && mem.page(index).kind == PageKind::kHuge) {
        PageInfo& page = mem.page(index);
        for (int j = 0; j < 64; ++j) {
          mem.NoteSubpageAccess(page, rng.NextBelow(kSubpagesPerHuge),
                                /*is_write=*/true);
        }
        mem.SplitHugePage(index, [&](uint32_t) {
          return rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
        });
      }
    } else {
      // Demand-fault a random hole if one exists in this region.
      const Vaddr base = regions[rng.NextBelow(regions.size())];
      const auto region = mem.RegionAt(base);
      ASSERT_TRUE(region.has_value());
      const Vpn vpn = region->first + rng.NextBelow(region->second);
      if (mem.Lookup(vpn) == kInvalidPage) {
        mem.DemandFault(vpn, AllocOptions{});
      }
    }
    if ((step & 63) == 0) {
      const AuditReport report = AuditMemorySystem(mem, tlb);
      ASSERT_TRUE(report.ok()) << "step " << step << ": " << report.ToJson(2);
    }
  }
  const AuditReport report = AuditMemorySystem(mem, tlb);
  ASSERT_TRUE(report.ok()) << report.ToJson(2);
  // The pool must conserve buffers even after thousands of random ops.
  EXPECT_EQ(mem.huge_meta_allocated(),
            mem.huge_meta_pooled() + mem.RecountLiveHugePages());
}

TEST(Fuzz, HugePageMetaPoolRecycles) {
  // Split/collapse churn on a steady-state set of huge pages must reuse
  // pooled HugePageMeta buffers instead of growing the allocation count.
  Rng rng(77);
  MemorySystem mem(MemoryConfig{.fast_frames = 8192, .capacity_frames = 8192});
  Tlb tlb;
  mem.AttachTlb(&tlb);
  std::vector<Vaddr> regions;
  for (int i = 0; i < 4; ++i) {
    const Vaddr base = mem.AllocateRegion(kHugePageSize, AllocOptions{});
    regions.push_back(base);
    // Write every subpage so splits keep all 512 children mapped (unwritten
    // subpages would be freed) and collapse preconditions always hold.
    PageInfo& page = mem.page(mem.Lookup(VpnOf(base)));
    for (uint64_t j = 0; j < kSubpagesPerHuge; ++j) {
      mem.NoteSubpageAccess(page, j, /*is_write=*/true);
    }
  }
  const uint64_t allocated_after_warmup = mem.huge_meta_allocated();
  ASSERT_GE(allocated_after_warmup, 4u);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const Vaddr base = regions[rng.NextBelow(regions.size())];
    const PageIndex index = mem.Lookup(VpnOf(base));
    ASSERT_NE(index, kInvalidPage);
    if (mem.page(index).kind == PageKind::kHuge) {
      mem.SplitHugePage(index, [&](uint32_t) {
        return rng.NextBool(0.5) ? TierId::kFast : TierId::kCapacity;
      });
    } else {
      ASSERT_TRUE(mem.CollapseToHuge(VpnOf(base), TierId::kFast));
    }
    // Conservation: every buffer is either pooled or owned by a live page.
    ASSERT_EQ(mem.huge_meta_allocated(),
              mem.huge_meta_pooled() + mem.live_huge_pages());
  }
  // Steady-state churn may need at most one extra buffer per collapse in
  // flight; it must not scale with the cycle count.
  EXPECT_LE(mem.huge_meta_allocated(), allocated_after_warmup + regions.size());
  EXPECT_TRUE(mem.CheckConsistency());
  const AuditReport report = AuditMemorySystem(mem, tlb);
  ASSERT_TRUE(report.ok()) << report.ToJson(2);
}

TEST(Fuzz, FaultStormSurvivesEveryPolicy) {
  // Every registered policy must degrade gracefully under a dense fault plan:
  // no crash, no invariant violation. MEMTIS_FAULTS overrides the plan
  // (scripts/check.sh's third pass sets it explicitly; "none" skips).
  const char* env = std::getenv("MEMTIS_FAULTS");
  const std::string spec =
      (env != nullptr && env[0] != '\0') ? env : std::string("storm");
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << spec << ": " << error;
  if (!plan.enabled()) {
    GTEST_SKIP() << "MEMTIS_FAULTS=" << spec << " disables the storm";
  }
  for (const std::string& name : KnownPolicyNames()) {
    for (const uint64_t seed : {11ull, 1011ull}) {
      auto workload = MakeWorkload("btree", 0.12);
      auto policy = MakePolicy(name, workload->footprint_bytes(),
                               workload->footprint_bytes() / 3);
      EngineOptions opts;
      opts.max_accesses = 80'000;
      opts.seed = seed;
      opts.faults = plan;
      AuditSession audit;  // collect mode: report inspected below
      opts.audit = &audit;
      Engine engine(MachineFor(*workload, 1.0 / 3.0), *policy, opts);
      const Metrics metrics = engine.Run(*workload);
      ASSERT_TRUE(audit.report().ok())
          << "reproducer: policy=" << name << " benchmark=btree seed=" << seed
          << " faults=" << plan.ToSpec() << "\n"
          << audit.report().ToJson(2);
      // A dense plan on a live policy must actually exercise the plane.
      EXPECT_GT(metrics.faults.total_injected(), 0u)
          << name << " seed " << seed;
    }
  }
}

class HistogramAuditTest : public ::testing::TestWithParam<std::string> {};

TEST_P(HistogramAuditTest, IncrementalStateMatchesRecomputation) {
  // Run MEMTIS over a benchmark, pausing periodically to recompute both
  // histograms from scratch and compare with the incremental bookkeeping.
  auto workload = MakeWorkload(GetParam(), 0.12);
  MemtisConfig cfg = MemtisConfig::ScaledDefaults(workload->footprint_bytes(),
                                                  workload->footprint_bytes() / 9);
  MemtisPolicy policy(cfg);
  EngineOptions opts;
  opts.max_accesses = 1;
  Engine engine(MachineFor(*workload, 1.0 / 9.0), policy, opts);
  for (uint64_t budget = 150'000; budget <= 1'200'000; budget += 150'000) {
    engine.set_max_accesses(budget);
    engine.Run(*workload);
    AuditReport report;
    AuditCollector out(&report);
    CheckMemtisHistogramsFull(policy, engine.mem(), out);
    CheckMemtisHistogramMass(policy, engine.mem(), out);
    CheckMemtisSampleLedger(policy, out);
    CheckPageTableMapping(engine.mem(), out);
    ASSERT_TRUE(report.ok()) << "at " << budget << ": " << report.ToJson(2);
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, HistogramAuditTest,
                         ::testing::Values("silo", "btree", "pagerank",
                                           "603.bwaves", "xsbench"));

}  // namespace
}  // namespace memtis
