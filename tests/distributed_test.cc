// Differential and chaos tests for distributed campaign execution: a
// multi-worker campaign — over either backend, with workers crashing, hanging,
// or retrying — must serialize to exactly the bytes of a single-host
// supervised run (src/runner/coordinator.h documents why this holds).
//
// Workers run in-process threads here (soft kills: the worker abandons its
// lease and its connection, which the coordinator sees as EOF / a stale claim
// heartbeat). Real SIGKILL chaos — including killing the coordinator itself —
// lives in scripts/smoke_distributed.sh.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/netio.h"
#include "src/common/status.h"
#include "src/runner/coordinator.h"
#include "src/runner/job_codec.h"
#include "src/runner/manifest.h"
#include "src/runner/resilient.h"
#include "src/runner/result_sink.h"
#include "src/runner/supervisor.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"
#include "src/runner/work_queue.h"
#include "src/runner/worker.h"

namespace memtis {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

SweepSpec SmallSweep(int seeds = 1) {
  SweepSpec sweep;
  sweep.systems = {"memtis", "autonuma"};
  sweep.benchmarks = {"btree"};
  sweep.accesses = 30'000;
  sweep.seeds = seeds;
  return sweep;
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::string cmd = "rm -rf '" + dir + "'";
  std::system(cmd.c_str());
  return dir;
}

// The acceptance bytes: the aggregate JSON and CSV a campaign's outcomes
// serialize to. Byte equality here is what "byte-identical merge" means.
std::string Bytes(const SweepSpec& sweep, const std::vector<JobSpec>& jobs,
                  const std::vector<CellOutcome>& outcomes) {
  SinkOptions opts;
  opts.indent = 0;
  return SweepToJson(sweep, jobs, outcomes, opts) + "\n" +
         SweepToCsv(jobs, outcomes);
}

std::vector<CellOutcome> LocalReference(const std::vector<JobSpec>& jobs,
                                        int max_attempts = 1,
                                        bool keep_going = false) {
  ExecOptions exec;
  exec.supervise = true;
  exec.max_attempts = max_attempts;
  exec.backoff_base_ms = 0;
  exec.keep_going = keep_going;
  ThreadPool pool(2);
  return RunJobsResilient(jobs, pool, exec);
}

struct CampaignRun {
  std::vector<CellOutcome> outcomes;
  CampaignStats stats;
  std::string error;
};

// Serves a socket campaign and runs each WorkerOptions entry as an in-process
// worker thread against it. Workers start as soon as the port is bound;
// workers whose `start_after_worker` predecessor is set join only after that
// predecessor finished (sequential chaos schedules).
CampaignRun RunSocketCampaign(const std::vector<JobSpec>& jobs,
                              const CampaignOptions& options,
                              const std::vector<WorkerOptions>& workers,
                              bool sequential_workers = false) {
  CampaignRun run;
  std::promise<uint16_t> port_promise;
  std::shared_future<uint16_t> port_future(port_promise.get_future());

  std::thread coordinator([&] {
    run.outcomes = ServeSocketCampaign(
        jobs, options, /*port=*/0,
        [&](uint16_t bound) { port_promise.set_value(bound); }, {}, nullptr,
        &run.stats, &run.error);
  });

  auto run_one = [&](const WorkerOptions& opts) {
    std::string error;
    auto queue = MakeSocketWorkQueue(std::to_string(port_future.get()),
                                     opts.name, 5'000, &error);
    ASSERT_NE(queue, nullptr) << error;
    RunWorker(*queue, opts);
    // Queue destruction closes the connection: a soft-killed worker's held
    // lease surfaces to the coordinator as EOF right here.
  };

  if (sequential_workers) {
    for (const WorkerOptions& opts : workers) {
      run_one(opts);
    }
  } else {
    std::vector<std::thread> threads;
    for (const WorkerOptions& opts : workers) {
      threads.emplace_back([&, opts] { run_one(opts); });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  coordinator.join();
  return run;
}

CampaignRun RunFileCampaign(const std::vector<JobSpec>& jobs,
                            const std::string& dir,
                            const CampaignOptions& options,
                            const std::vector<WorkerOptions>& workers,
                            bool sequential_workers = false) {
  CampaignRun run;
  std::thread coordinator([&] {
    run.outcomes = ServeFileCampaign(jobs, dir, options, {}, nullptr,
                                     &run.stats, &run.error);
  });

  auto run_one = [&](const WorkerOptions& opts) {
    std::string error;
    auto queue = MakeFileWorkQueue(dir, opts.name, 30'000, &error);
    ASSERT_NE(queue, nullptr) << error;
    RunWorker(*queue, opts);
  };

  if (sequential_workers) {
    for (const WorkerOptions& opts : workers) {
      run_one(opts);
    }
  } else {
    std::vector<std::thread> threads;
    for (const WorkerOptions& opts : workers) {
      threads.emplace_back([&, opts] { run_one(opts); });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  coordinator.join();
  return run;
}

std::vector<WorkerOptions> PlainWorkers(int n) {
  std::vector<WorkerOptions> workers(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers[static_cast<size_t>(i)].name = "w" + std::to_string(i);
  }
  return workers;
}

// ---------------------------------------------------------------------------
// Differential suite: in-process == supervised == 1-worker == 4-worker, over
// both backends.

TEST(Distributed, SocketCampaignMatchesInProcessAndSupervisedBytes) {
  const SweepSpec sweep = SmallSweep();
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  ASSERT_EQ(jobs.size(), 2u);

  // Three executions of the same cells: pure in-process, locally supervised,
  // and a 1-worker campaign.
  std::vector<CellOutcome> in_process(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    in_process[i].ok = true;
    in_process[i].ran = true;
    in_process[i].attempts = 1;
    in_process[i].result = RunJob(jobs[i]);
  }
  const std::vector<CellOutcome> supervised = LocalReference(jobs);
  const CampaignRun campaign =
      RunSocketCampaign(jobs, CampaignOptions{}, PlainWorkers(1));

  ASSERT_TRUE(campaign.error.empty()) << campaign.error;
  EXPECT_EQ(Bytes(sweep, jobs, supervised), Bytes(sweep, jobs, in_process));
  EXPECT_EQ(Bytes(sweep, jobs, campaign.outcomes),
            Bytes(sweep, jobs, in_process));
  EXPECT_EQ(campaign.stats.issues, jobs.size());
  EXPECT_EQ(campaign.stats.leases_lost, 0u);
}

TEST(Distributed, FourSocketWorkersAreByteIdenticalToOne) {
  const SweepSpec sweep = SmallSweep(/*seeds=*/2);
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  ASSERT_EQ(jobs.size(), 4u);
  const std::vector<CellOutcome> reference = LocalReference(jobs);

  const CampaignRun campaign =
      RunSocketCampaign(jobs, CampaignOptions{}, PlainWorkers(4));
  ASSERT_TRUE(campaign.error.empty()) << campaign.error;
  EXPECT_EQ(Bytes(sweep, jobs, campaign.outcomes),
            Bytes(sweep, jobs, reference));
}

TEST(Distributed, FileBackendTwoWorkersAreByteIdentical) {
  const SweepSpec sweep = SmallSweep(/*seeds=*/2);
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  const std::vector<CellOutcome> reference = LocalReference(jobs);

  const CampaignRun campaign =
      RunFileCampaign(jobs, TempDirFor("dist_file_q"), CampaignOptions{},
                      PlainWorkers(2));
  ASSERT_TRUE(campaign.error.empty()) << campaign.error;
  EXPECT_EQ(Bytes(sweep, jobs, campaign.outcomes),
            Bytes(sweep, jobs, reference));
}

// ---------------------------------------------------------------------------
// Chaos: killed workers, hung workers, retries that hop across workers.

TEST(Distributed, KilledSocketWorkerLeasesAreReissuedByteIdentically) {
  const SweepSpec sweep = SmallSweep(/*seeds=*/2);
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  const std::vector<CellOutcome> reference = LocalReference(jobs);

  // Worker 0 dies while holding its very first lease; three healthy workers
  // absorb the campaign. Then the same schedule with a single healthy worker.
  for (const int healthy : {3, 1}) {
    std::vector<WorkerOptions> workers = PlainWorkers(healthy + 1);
    workers[0].kill_after_cells = 0;  // soft kill: quit holding the lease
    const CampaignRun campaign = RunSocketCampaign(
        jobs, CampaignOptions{}, workers, /*sequential_workers=*/healthy == 1);
    ASSERT_TRUE(campaign.error.empty()) << campaign.error;
    EXPECT_GE(campaign.stats.leases_lost, 1u) << "healthy=" << healthy;
    EXPECT_GT(campaign.stats.issues, jobs.size()) << "healthy=" << healthy;
    EXPECT_EQ(Bytes(sweep, jobs, campaign.outcomes),
              Bytes(sweep, jobs, reference))
        << "healthy=" << healthy;
  }
}

TEST(Distributed, KilledFileWorkerClaimExpiresAndIsReissued) {
  const SweepSpec sweep = SmallSweep(/*seeds=*/2);
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  const std::vector<CellOutcome> reference = LocalReference(jobs);

  CampaignOptions options;
  options.lease_timeout_ms = 400;  // expire the dead worker's claim quickly
  std::vector<WorkerOptions> workers = PlainWorkers(2);
  workers[0].kill_after_cells = 0;  // dies holding claim-*: heartbeat stops
  const CampaignRun campaign =
      RunFileCampaign(jobs, TempDirFor("dist_file_chaos"), options, workers,
                      /*sequential_workers=*/true);
  ASSERT_TRUE(campaign.error.empty()) << campaign.error;
  EXPECT_GE(campaign.stats.leases_lost, 1u);
  EXPECT_EQ(Bytes(sweep, jobs, campaign.outcomes),
            Bytes(sweep, jobs, reference));
}

TEST(Distributed, HungWorkerLeaseExpiresWithoutChangingBytes) {
  const SweepSpec sweep = SmallSweep(/*seeds=*/2);
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  const std::vector<CellOutcome> reference = LocalReference(jobs);

  CampaignOptions options;
  options.lease_timeout_ms = 150;
  std::vector<WorkerOptions> workers = PlainWorkers(2);
  workers[0].hang_first_claim_ms = 600;  // sits on the lease, never renews
  const CampaignRun campaign = RunSocketCampaign(jobs, options, workers);
  ASSERT_TRUE(campaign.error.empty()) << campaign.error;
  EXPECT_GE(campaign.stats.leases_lost, 1u);
  EXPECT_EQ(Bytes(sweep, jobs, campaign.outcomes),
            Bytes(sweep, jobs, reference));
}

// The retry-accounting gap: a cell that crashes on worker A and succeeds on
// worker B must report the same global attempt count (2) and the same bytes
// as a single-host retry.
TEST(Distributed, RetryAcrossWorkersKeepsGlobalAttemptCountAndBytes) {
  const SweepSpec sweep = SmallSweep();
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  ASSERT_EQ(jobs.size(), 2u);
  ScopedEnv crash("MEMTIS_CRASH_CELL", JobFingerprint(jobs[0]) + ":1");

  const std::vector<CellOutcome> reference =
      LocalReference(jobs, /*max_attempts=*/2);
  ASSERT_TRUE(reference[0].ok);
  ASSERT_EQ(reference[0].attempts, 2);

  CampaignOptions options;
  options.max_attempts = 2;
  // Two workers racing: whichever reports the attempt-0 crash, the attempt-1
  // retry may land on either worker — both must produce identical bytes.
  const CampaignRun campaign =
      RunSocketCampaign(jobs, options, PlainWorkers(2));
  ASSERT_TRUE(campaign.error.empty()) << campaign.error;
  EXPECT_GE(campaign.stats.retries, 1u);
  ASSERT_TRUE(campaign.outcomes[0].ok) << campaign.outcomes[0].failure.message;
  EXPECT_EQ(campaign.outcomes[0].attempts, 2);
  EXPECT_EQ(Bytes(sweep, jobs, campaign.outcomes),
            Bytes(sweep, jobs, reference));
}

TEST(Distributed, ExhaustedReissueBudgetDecidesLeaseExpired) {
  const SweepSpec sweep = SmallSweep();
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);

  CampaignOptions options;
  options.max_reissues = 1;
  options.keep_going = true;
  // Two sequential lease abandonments on cell 0 exhaust the budget; a healthy
  // worker then finishes the rest of the campaign.
  std::vector<WorkerOptions> workers = PlainWorkers(3);
  workers[0].kill_after_cells = 0;
  workers[1].kill_after_cells = 0;
  const CampaignRun campaign = RunSocketCampaign(jobs, options, workers,
                                                 /*sequential_workers=*/true);
  ASSERT_TRUE(campaign.error.empty()) << campaign.error;
  EXPECT_EQ(campaign.stats.leases_lost, 2u);

  const CellOutcome& dead = campaign.outcomes[0];
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.failure.kind, FailureKind::kLeaseExpired);
  EXPECT_NE(dead.failure.reproducer_cmdline.find("--benchmarks=btree"),
            std::string::npos)
      << dead.failure.reproducer_cmdline;
  EXPECT_EQ(FailureKindName(FailureKind::kLeaseExpired),
            std::string("lease-expired"));
  EXPECT_TRUE(IsRecoverable(FailureKind::kLeaseExpired));
  // The healthy worker still decided every other cell.
  EXPECT_TRUE(campaign.outcomes[1].ok);
}

// ---------------------------------------------------------------------------
// Coordinator death and resume.

TEST(Distributed, SocketResumeFromManifestSkipsDecidedCells) {
  const SweepSpec sweep = SmallSweep(/*seeds=*/2);
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  const std::vector<CellOutcome> reference = LocalReference(jobs);
  const std::string manifest =
      ::testing::TempDir() + "dist_resume_manifest.jsonl";
  std::remove(manifest.c_str());

  CampaignOptions options;
  options.manifest_path = manifest;
  const CampaignRun first =
      RunSocketCampaign(jobs, options, PlainWorkers(2));
  ASSERT_TRUE(first.error.empty()) << first.error;
  EXPECT_EQ(Bytes(sweep, jobs, first.outcomes), Bytes(sweep, jobs, reference));

  // "Coordinator died after finishing": restart with the manifest preloaded.
  // Every cell reloads; no worker is needed, no lease is issued, and the
  // merged bytes do not change.
  std::map<std::string, ManifestEntry> preloaded;
  ASSERT_TRUE(LoadManifest(manifest, &preloaded));
  CampaignStats stats;
  std::string error;
  const std::vector<CellOutcome> resumed = ServeSocketCampaign(
      jobs, options, 0, nullptr, preloaded, nullptr, &stats, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(stats.issues, 0u);
  EXPECT_EQ(Bytes(sweep, jobs, resumed), Bytes(sweep, jobs, reference));
}

// SIGKILLing a file-backend coordinator leaves cells.jsonl, per-worker
// results files, and possibly a dead worker's claim file behind. A restarted
// coordinator on the same directory must recover all of it: decided cells
// from the results files, the stale claim via heartbeat expiry.
TEST(Distributed, FileBackendCoordinatorRestartRecoversResultsAndStaleClaims) {
  const SweepSpec sweep = SmallSweep(/*seeds=*/2);
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  const std::vector<CellOutcome> reference = LocalReference(jobs);

  // A complete campaign gives us authentic on-disk artifacts to replay.
  const std::string dir1 = TempDirFor("dist_restart_src");
  const CampaignRun full =
      RunFileCampaign(jobs, dir1, CampaignOptions{}, PlainWorkers(1));
  ASSERT_TRUE(full.error.empty()) << full.error;

  // Fabricate the dead coordinator's directory: the first half of the results
  // file survived, plus a stale claim file from a worker that died mid-cell.
  const std::string dir2 = TempDirFor("dist_restart_dst");
  ASSERT_EQ(::system(("mkdir -p '" + dir2 + "'").c_str()), 0);
  {
    std::ifstream in(WorkerResultsPath(dir1, "w0"));
    ASSERT_TRUE(in.is_open());
    std::ofstream out(WorkerResultsPath(dir2, "w0"));
    std::string line;
    size_t copied = 0;
    while (copied + 1 < jobs.size() / 2 + 1 && std::getline(in, line)) {
      out << line << "\n";
      ++copied;
    }
  }
  {
    // An orphaned claim on a not-yet-decided cell, heartbeat long stale.
    std::ofstream claim(ClaimFilePath(dir2, jobs.size() - 1, 0, 0));
    claim << "dead-worker\n";
  }

  CampaignOptions options;
  options.lease_timeout_ms = 300;
  const CampaignRun resumed =
      RunFileCampaign(jobs, dir2, options, PlainWorkers(1));
  ASSERT_TRUE(resumed.error.empty()) << resumed.error;
  // The surviving results were honoured (fewer fresh issues than cells) and
  // the orphaned claim was revoked, not waited on forever.
  EXPECT_LT(resumed.stats.issues, jobs.size());
  EXPECT_GE(resumed.stats.leases_lost, 1u);
  EXPECT_EQ(Bytes(sweep, jobs, resumed.outcomes),
            Bytes(sweep, jobs, reference));
}

// ---------------------------------------------------------------------------
// Campaign state machine unit tests (no workers, no sockets).

TEST(Campaign, DuplicateAndStaleResultsAreIgnored) {
  const std::vector<JobSpec> jobs = ExpandJobs(SmallSweep());
  CampaignOptions options;
  options.keep_going = true;
  Campaign campaign(jobs, options, {}, nullptr, nullptr);

  auto item = campaign.NextIssue(/*now_ms=*/1000);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->index, 0u);
  EXPECT_EQ(item->attempt, 0);
  EXPECT_EQ(item->issue, 0u);

  SupervisedOutcome ok;
  ok.ok = true;
  ok.attempts = 1;
  EXPECT_TRUE(campaign.OnOutcome(0, 0, ok));
  EXPECT_FALSE(campaign.OnOutcome(0, 0, ok));  // duplicate: decided
  EXPECT_FALSE(campaign.OnOutcome(0, 5, ok));  // stale attempt
  EXPECT_FALSE(campaign.OnOutcome(99, 0, ok));  // out of range
  EXPECT_EQ(campaign.stats().stale_results, 3u);

  // A lease loss for a superseded issue id is a no-op.
  auto second = campaign.NextIssue(1000);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->index, 1u);
  campaign.OnLeaseLost(1, /*issue=*/7);  // wrong issue: ignored
  EXPECT_EQ(campaign.stats().leases_lost, 0u);
  EXPECT_EQ(campaign.open_issue(1), 0u);

  // Renewing a revoked tuple fails; renewing the live one succeeds.
  EXPECT_TRUE(campaign.Renew(1, 0, 0, 2000));
  campaign.OnLeaseLost(1, 0);
  EXPECT_FALSE(campaign.Renew(1, 0, 0, 3000));
  EXPECT_EQ(campaign.open_issue(1), 1u);
}

TEST(Campaign, LeaseExpiryReissuesSameAttemptFreshIssue) {
  const std::vector<JobSpec> jobs = ExpandJobs(SmallSweep());
  Campaign campaign(jobs, CampaignOptions{}, {}, nullptr, nullptr);

  auto item = campaign.NextIssue(1000);
  ASSERT_TRUE(item.has_value());
  // Deadline passes with no renewal: same attempt, new issue id.
  campaign.ExpireStale(1000 + 10'001);
  EXPECT_EQ(campaign.stats().leases_lost, 1u);
  auto reissued = campaign.NextIssue(20'000);
  ASSERT_TRUE(reissued.has_value());
  EXPECT_EQ(reissued->index, item->index);
  EXPECT_EQ(reissued->attempt, item->attempt);  // same seed derivation
  EXPECT_EQ(reissued->issue, item->issue + 1);
  // Whereas a reported crash advances the attempt (seed folds).
  SupervisedOutcome crash;
  crash.ok = false;
  crash.attempts = 1;
  crash.failure.kind = FailureKind::kCrash;
  Campaign retrying(jobs, [] {
    CampaignOptions o;
    o.max_attempts = 2;
    return o;
  }(), {}, nullptr, nullptr);
  auto first = retrying.NextIssue(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(retrying.OnOutcome(first->index, first->attempt, crash));
  auto retry = retrying.NextIssue(0);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->index, first->index);
  EXPECT_EQ(retry->attempt, first->attempt + 1);
}

// The protocol codecs the two ends share must round-trip losslessly —
// including through a FrameDecoder fed one byte at a time.
TEST(Distributed, ProtocolRoundTripsThroughFrameDecoder) {
  const std::vector<JobSpec> jobs = ExpandJobs(SmallSweep());
  WorkItem item;
  item.index = 1;
  item.attempt = 3;
  item.issue = 7;
  item.job_timeout_ms = 1234;
  item.fingerprint = JobFingerprint(jobs[1]);
  item.spec = jobs[1];

  const std::string frame = EncodeFrame(EncodeCellReply(item));
  FrameDecoder decoder;
  for (const char c : frame) {
    decoder.Feed(&c, 1);
  }
  std::string payload;
  ASSERT_TRUE(decoder.Next(&payload));
  CoordinatorReply reply;
  std::string error;
  ASSERT_TRUE(ParseCoordinatorReply(payload, &reply, &error)) << error;
  ASSERT_EQ(reply.kind, CoordinatorReply::Kind::kCell);
  EXPECT_EQ(reply.item.index, item.index);
  EXPECT_EQ(reply.item.attempt, item.attempt);
  EXPECT_EQ(reply.item.issue, item.issue);
  EXPECT_EQ(reply.item.job_timeout_ms, item.job_timeout_ms);
  EXPECT_EQ(reply.item.fingerprint, item.fingerprint);
  // The shipped spec hashes back to the advertised fingerprint — the check
  // every worker applies before running a cell.
  EXPECT_EQ(JobFingerprint(reply.item.spec), item.fingerprint);

  SupervisedOutcome outcome;
  outcome.ok = false;
  outcome.attempts = 4;
  outcome.failure.kind = FailureKind::kTimeout;
  outcome.failure.message = "deadline";
  outcome.failure.reproducer_cmdline = ReproducerCmdline(jobs[1], 3);
  WorkerRequest req;
  ASSERT_TRUE(ParseWorkerRequest(EncodeResultRequest("w9", item, outcome),
                                 &req, &error))
      << error;
  ASSERT_EQ(req.kind, WorkerRequest::Kind::kResult);
  EXPECT_EQ(req.worker, "w9");
  EXPECT_EQ(req.index, item.index);
  EXPECT_EQ(req.attempt, item.attempt);
  EXPECT_EQ(req.issue, item.issue);
  EXPECT_FALSE(req.outcome.ok);
  EXPECT_EQ(req.outcome.attempts, 4);
  EXPECT_EQ(req.outcome.failure.kind, FailureKind::kTimeout);
  EXPECT_EQ(req.outcome.failure.reproducer_cmdline,
            outcome.failure.reproducer_cmdline);
}

}  // namespace
}  // namespace memtis
