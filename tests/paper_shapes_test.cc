// Regression guards for the paper's qualitative headline shapes, as cheap
// versions of the bench experiments. If one of these goes red, a change has
// broken the reproduction, not just an implementation detail.

#include <gtest/gtest.h>

#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

double RuntimeOf(const std::string& system, const std::string& benchmark,
                 double fast_ratio, uint64_t accesses, double footprint_scale,
                 uint64_t fast_bytes_override = 0) {
  auto workload = MakeWorkload(benchmark, footprint_scale);
  const uint64_t fast =
      fast_bytes_override != 0
          ? fast_bytes_override
          : static_cast<uint64_t>(static_cast<double>(workload->footprint_bytes()) *
                                  fast_ratio);
  auto policy = MakePolicy(system, workload->footprint_bytes(), fast);
  EngineOptions opts;
  opts.max_accesses = accesses;
  MachineConfig machine = MakeNvmMachine(
      fast, workload->footprint_bytes() + workload->footprint_bytes() / 2);
  Engine engine(machine, *policy, opts);
  return engine.Run(*workload).EffectiveRuntimeNs();
}

// Fig. 5 headline: MEMTIS beats the static-threshold PEBS system (HeMem) on
// the skewed-huge-page workloads at 1:8 by a wide margin.
TEST(PaperShapes, Fig5_MemtisBeatsHeMemOnSkewedWorkloads) {
  for (const char* benchmark : {"silo", "btree"}) {
    const double memtis = RuntimeOf("memtis", benchmark, 1.0 / 9.0, 2'000'000, 0.2);
    const double hemem = RuntimeOf("hemem", benchmark, 1.0 / 9.0, 2'000'000, 0.2);
    EXPECT_LT(memtis, hemem * 0.8) << benchmark;
  }
}

// Fig. 6 shape: with a fixed fast tier, MEMTIS's advantage over the
// all-capacity baseline persists when the RSS more than doubles.
TEST(PaperShapes, Fig6_AdvantagePersistsAtScale) {
  auto probe = MakeWorkload("graph500", 0.15);
  const uint64_t fast = probe->footprint_bytes() / 2;
  for (double scale : {0.15, 0.4}) {
    const double memtis = RuntimeOf("memtis", "graph500", 0, 2'000'000, scale, fast);
    const double none =
        RuntimeOf("all-capacity", "graph500", 0, 2'000'000, scale, fast);
    EXPECT_LT(memtis, none) << "scale " << scale;
  }
}

// Fig. 7 shape: at 2:1 MEMTIS lands between TPP and the all-DRAM ceiling.
TEST(PaperShapes, Fig7_MemtisBetweenTppAndAllDram) {
  const double memtis = RuntimeOf("memtis", "silo", 2.0 / 3.0, 2'000'000, 0.2);
  const double tpp = RuntimeOf("tpp", "silo", 2.0 / 3.0, 2'000'000, 0.2);
  const double dram = RuntimeOf("all-fast", "silo", 1.3, 2'000'000, 0.2);
  EXPECT_LT(memtis, tpp);
  EXPECT_GT(memtis, dram);
}

// Fig. 11 shape: splitting reduces the Btree model's RSS substantially.
TEST(PaperShapes, Fig11_SplitShrinksBtreeRss) {
  auto workload = MakeWorkload("btree", 0.2);
  auto policy = MakePolicy("memtis", workload->footprint_bytes(),
                           workload->footprint_bytes() / 9);
  EngineOptions opts;
  opts.max_accesses = 2'500'000;
  Engine engine(MachineFor(*workload, 1.0 / 9.0), *policy, opts);
  const Metrics m = engine.Run(*workload);
  EXPECT_LT(m.final_rss_pages * 4, m.peak_rss_pages * 3);  // >25% reclaimed
}

// Fig. 14 shape: the MEMTIS-over-TPP gap narrows when the capacity tier is
// CXL instead of NVM (tier latency gap shrinks).
TEST(PaperShapes, Fig14_GapNarrowsOnCxl) {
  auto gap_on = [&](bool cxl) {
    auto workload = MakeWorkload("silo", 0.2);
    auto run = [&](const char* system) {
      auto w = MakeWorkload("silo", 0.2);
      auto policy = MakePolicy(system, w->footprint_bytes(), w->footprint_bytes() / 9);
      EngineOptions opts;
      opts.max_accesses = 2'000'000;
      Engine engine(MachineFor(*w, 1.0 / 9.0, cxl), *policy, opts);
      return engine.Run(*w).EffectiveRuntimeNs();
    };
    return run("tpp") / run("memtis");  // >1: memtis faster
  };
  const double nvm_gap = gap_on(false);
  const double cxl_gap = gap_on(true);
  EXPECT_GT(nvm_gap, 1.0);
  EXPECT_GT(cxl_gap, 1.0);
  EXPECT_LT(cxl_gap, nvm_gap);
}

// §6.3.5: the period controller, not luck, keeps ksampled at its CPU cap
// across every benchmark.
TEST(PaperShapes, KsampledCapHoldsEverywhere) {
  for (const auto& benchmark : StandardBenchmarks()) {
    auto workload = MakeWorkload(benchmark, 0.12);
    MemtisConfig cfg = MemtisConfig::ScaledDefaults(workload->footprint_bytes(),
                                                    workload->footprint_bytes() / 3);
    MemtisPolicy policy(cfg);
    EngineOptions opts;
    opts.max_accesses = 1'000'000;
    Engine engine(MachineFor(*workload, 1.0 / 3.0), policy, opts);
    const Metrics m = engine.Run(*workload);
    EXPECT_LT(m.cpu.core_share(DaemonKind::kSampler, m.app_ns), 0.05) << benchmark;
  }
}

}  // namespace
}  // namespace memtis
