#include "src/access/pt_scanner.h"

#include <gtest/gtest.h>

namespace memtis {
namespace {

TEST(PtScanner, ReportsAndClearsReferencedBits) {
  MemorySystem mem(MemoryConfig{.fast_frames = 1024, .capacity_frames = 1024});
  AllocOptions opts;
  opts.use_thp = false;
  const Vaddr start = mem.AllocateRegion(kHugePageSize, opts);
  PtScanner scanner;
  scanner.MarkAccessed(mem.Lookup(VpnOf(start)));
  scanner.MarkAccessed(mem.Lookup(VpnOf(start) + 3));

  int referenced = 0;
  int total = 0;
  scanner.Scan(mem, [&](PageIndex, PageInfo&, bool ref) {
    ++total;
    referenced += ref ? 1 : 0;
  });
  EXPECT_EQ(total, static_cast<int>(kSubpagesPerHuge));
  EXPECT_EQ(referenced, 2);

  // Bits are cleared by the scan.
  referenced = 0;
  scanner.Scan(mem, [&](PageIndex, PageInfo&, bool ref) { referenced += ref ? 1 : 0; });
  EXPECT_EQ(referenced, 0);
  EXPECT_EQ(scanner.scans(), 2u);
}

TEST(PtScanner, CostScalesWithMemorySize) {
  PtScanConfig cfg;
  cfg.per_page_cost_ns = 100;
  MemorySystem small(MemoryConfig{.fast_frames = 1024, .capacity_frames = 1024});
  MemorySystem large(MemoryConfig{.fast_frames = 8192, .capacity_frames = 8192});
  AllocOptions opts;
  opts.use_thp = false;
  small.AllocateRegion(kHugePageSize, opts);
  large.AllocateRegion(8 * kHugePageSize, opts);

  PtScanner s1(cfg);
  PtScanner s2(cfg);
  const uint64_t c1 = s1.Scan(small, [](PageIndex, PageInfo&, bool) {});
  const uint64_t c2 = s2.Scan(large, [](PageIndex, PageInfo&, bool) {});
  EXPECT_EQ(c2, 8 * c1);  // the paper's §2.1 scalability complaint
}

}  // namespace
}  // namespace memtis
