#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <array>

namespace memtis {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Ema, FirstSampleInitializes) {
  Ema ema(0.5);
  EXPECT_FALSE(ema.initialized());
  ema.Add(10.0);
  EXPECT_TRUE(ema.initialized());
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
}

TEST(Ema, DecaysTowardNewSamples) {
  Ema ema(0.5);
  ema.Add(0.0);
  ema.Add(8.0);
  EXPECT_DOUBLE_EQ(ema.value(), 4.0);
  ema.Add(8.0);
  EXPECT_DOUBLE_EQ(ema.value(), 6.0);
}

TEST(GeoMean, MatchesHandComputation) {
  const std::array<double, 3> values = {1.0, 8.0, 27.0};
  EXPECT_NEAR(GeoMean(values), 6.0, 1e-9);
}

TEST(GeoMean, EmptyIsZero) { EXPECT_DOUBLE_EQ(GeoMean({}), 0.0); }

TEST(PearsonCorrelation, PerfectPositive) {
  const std::array<double, 4> xs = {1, 2, 3, 4};
  const std::array<double, 4> ys = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(PearsonCorrelation, PerfectNegative) {
  const std::array<double, 4> xs = {1, 2, 3, 4};
  const std::array<double, 4> ys = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ConstantSideIsZero) {
  const std::array<double, 3> xs = {1, 1, 1};
  const std::array<double, 3> ys = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, ys), 0.0);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
}

}  // namespace
}  // namespace memtis
