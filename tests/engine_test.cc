#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include "src/policies/static_policy.h"
#include "src/workloads/synthetic.h"

namespace memtis {
namespace {

SyntheticWorkload::Params SmallSynthetic() {
  SyntheticWorkload::Params p;
  p.footprint_bytes = 16ull << 20;
  p.zipf_s = 1.0;
  return p;
}

EngineOptions QuickRun(uint64_t accesses = 200'000) {
  EngineOptions opts;
  opts.max_accesses = accesses;
  return opts;
}

TEST(Engine, RunsToAccessBudget) {
  StaticPolicy policy(TierId::kFast);
  Engine engine(MakeDramOnlyMachine(32ull << 20), policy, QuickRun());
  SyntheticWorkload workload(SmallSynthetic());
  const Metrics m = engine.Run(workload);
  EXPECT_GE(m.accesses, 200'000u);
  EXPECT_GT(m.app_ns, 0u);
  EXPECT_EQ(m.loads + m.stores, m.accesses);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run = [] {
    StaticPolicy policy(TierId::kFast);
    Engine engine(MakeDramOnlyMachine(32ull << 20), policy, QuickRun());
    SyntheticWorkload workload(SmallSynthetic());
    return engine.Run(workload);
  };
  const Metrics a = run();
  const Metrics b = run();
  EXPECT_EQ(a.app_ns, b.app_ns);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.tlb.misses(), b.tlb.misses());
}

TEST(Engine, CapacityTierIsSlowerThanFastTier) {
  const MachineConfig machine = MakeNvmMachine(64ull << 20, 64ull << 20);
  StaticPolicy fast(TierId::kFast);
  StaticPolicy slow(TierId::kCapacity);
  Engine fast_engine(machine, fast, QuickRun());
  Engine slow_engine(machine, slow, QuickRun());
  SyntheticWorkload w1(SmallSynthetic());
  SyntheticWorkload w2(SmallSynthetic());
  const Metrics mf = fast_engine.Run(w1);
  const Metrics ms = slow_engine.Run(w2);
  EXPECT_GT(ms.app_ns, mf.app_ns * 2);  // NVM load 300 vs DRAM 100
  EXPECT_DOUBLE_EQ(mf.fast_hit_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(ms.fast_hit_ratio(), 0.0);
}

TEST(Engine, ThpReducesTranslationCost) {
  const MachineConfig machine = MakeDramOnlyMachine(128ull << 20);
  StaticPolicy thp(TierId::kFast, /*use_thp=*/true);
  StaticPolicy no_thp(TierId::kFast, /*use_thp=*/false);
  SyntheticWorkload::Params p;
  p.footprint_bytes = 96ull << 20;  // larger than base-TLB reach
  p.zipf_s = 0.2;                   // near-uniform: TLB-hostile
  Engine e1(machine, thp, QuickRun(400'000));
  Engine e2(machine, no_thp, QuickRun(400'000));
  SyntheticWorkload w1(p);
  SyntheticWorkload w2(p);
  const Metrics m1 = e1.Run(w1);
  const Metrics m2 = e2.Run(w2);
  EXPECT_LT(m1.tlb.miss_ratio(), m2.tlb.miss_ratio());
  EXPECT_LT(m1.app_ns, m2.app_ns);
}

TEST(Engine, CxlLatencyBetweenDramAndNvm) {
  SyntheticWorkload::Params p = SmallSynthetic();
  auto time_with = [&](const MachineConfig& machine) {
    StaticPolicy policy(TierId::kCapacity);
    Engine engine(machine, policy, QuickRun());
    SyntheticWorkload w(p);
    return engine.Run(w).app_ns;
  };
  const uint64_t nvm = time_with(MakeNvmMachine(8ull << 20, 64ull << 20));
  const uint64_t cxl = time_with(MakeCxlMachine(8ull << 20, 64ull << 20));
  const uint64_t dram = time_with(MakeDramOnlyMachine(64ull << 20));
  EXPECT_LT(cxl, nvm);
  EXPECT_GT(cxl, dram);
}

TEST(Engine, SnapshotsFollowInterval) {
  StaticPolicy policy(TierId::kFast);
  EngineOptions opts = QuickRun();
  opts.snapshot_interval_ns = 1'000'000;
  Engine engine(MakeDramOnlyMachine(32ull << 20), policy, opts);
  SyntheticWorkload workload(SmallSynthetic());
  const Metrics m = engine.Run(workload);
  EXPECT_GT(m.timeline.size(), 3u);
  for (size_t i = 1; i < m.timeline.size(); ++i) {
    EXPECT_GT(m.timeline[i].t_ns, m.timeline[i - 1].t_ns);
  }
}

TEST(Engine, SnapshotBurstAfterStallSkipsAhead) {
  // A long app stall (here: a big allocation that advances virtual time past
  // dozens of snapshot intervals) must produce at most one snapshot per
  // interval afterwards — not a burst of back-to-back stale-window snapshots
  // on the accesses following the stall.
  class StallWorkload : public Workload {
   public:
    std::string_view name() const override { return "stall"; }
    uint64_t footprint_bytes() const override { return 128ull << 20; }
    void Setup(App& app, Rng&) override { region_ = app.Alloc(2ull << 20); }
    bool Step(App& app, Rng& rng) override {
      ++steps_;
      if (steps_ == 10) {
        // ~32 huge pages x 512 x 300 ns = ~4.9 ms stall (many intervals).
        app.Alloc(64ull << 20, /*use_thp=*/true);
      }
      for (int i = 0; i < 64; ++i) {
        app.Read(region_ + rng.NextBelow(2ull << 20));
      }
      return true;
    }

   private:
    Vaddr region_ = 0;
    int steps_ = 0;
  };
  constexpr uint64_t kInterval = 100'000;
  StaticPolicy policy(TierId::kFast, /*use_thp=*/true);
  EngineOptions opts = QuickRun(60'000);
  opts.snapshot_interval_ns = kInterval;
  Engine engine(MakeDramOnlyMachine(256ull << 20), policy, opts);
  StallWorkload workload;
  const Metrics m = engine.Run(workload);
  ASSERT_GT(m.timeline.size(), 3u);
  bool saw_stall = false;
  for (size_t i = 1; i < m.timeline.size(); ++i) {
    const uint64_t prev = m.timeline[i - 1].t_ns;
    const uint64_t cur = m.timeline[i].t_ns;
    ASSERT_GT(cur, prev);
    // Never two snapshots inside the same interval bucket (the burst bug's
    // signature was runs of snapshots a single access apart).
    EXPECT_GT(cur / kInterval, prev / kInterval)
        << "snapshots " << i - 1 << " and " << i << " share a bucket";
    saw_stall = saw_stall || cur - prev > 10 * kInterval;
  }
  EXPECT_TRUE(saw_stall) << "test never exercised the multi-interval stall";
}

TEST(Engine, ContentionInflatesRuntime) {
  Metrics m;
  m.app_ns = 1'000'000;
  m.cores = 10;
  m.cpu_contention = true;
  m.cpu.Charge(DaemonKind::kSampler, 1'000'000);  // one full core
  EXPECT_NEAR(m.EffectiveRuntimeNs(), 1'100'000.0, 1.0);
  m.cpu_contention = false;
  EXPECT_DOUBLE_EQ(m.EffectiveRuntimeNs(), 1'000'000.0);
}

TEST(Engine, AllocFreeChurnWorks) {
  // bwaves-style churn through the App facade must not corrupt state.
  class ChurnWorkload : public Workload {
   public:
    std::string_view name() const override { return "churn"; }
    uint64_t footprint_bytes() const override { return 8ull << 20; }
    void Setup(App& app, Rng&) override { region_ = app.Alloc(4ull << 20); }
    bool Step(App& app, Rng& rng) override {
      for (int i = 0; i < 64; ++i) {
        app.Read(region_ + rng.NextBelow(4ull << 20));
      }
      app.Free(region_);
      region_ = app.Alloc(4ull << 20);
      return true;
    }

   private:
    Vaddr region_ = 0;
  };
  StaticPolicy policy(TierId::kFast);
  Engine engine(MakeDramOnlyMachine(32ull << 20), policy, QuickRun(50'000));
  ChurnWorkload workload;
  const Metrics m = engine.Run(workload);
  EXPECT_GE(m.accesses, 50'000u);
  EXPECT_TRUE(engine.mem().CheckConsistency());
}

}  // namespace
}  // namespace memtis
