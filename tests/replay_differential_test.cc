// Differential pins for the raw-speed access engine (batched replay + SoA
// hot metadata + sharded execution). The contract under test (see DESIGN.md,
// "Batched replay, SoA metadata, and sharding: the determinism contract"):
//
//  - Batched replay is an encoding, not a semantic: a workload issuing runs
//    through App::ReadRun/WriteRun produces byte-identical metrics and audit
//    documents to the same address stream issued access-by-access, for every
//    registered policy, fault-free or under the dense storm preset.
//  - ShardedEngine(1 shard) is byte-identical to a plain Engine.
//  - ShardedEngine(N shards) is byte-identical for any worker thread count.
//
// The whole file runs under MEMTIS_AUDIT=1 in scripts/check.sh's second pass
// (every engine here installs the env audit hook via MakeEnvAuditSession), so
// the identities are also pinned with the abort-on-violation auditor wired in.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/audit/audit_session.h"
#include "src/common/json.h"
#include "src/fault/fault.h"
#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/sim/sharded_engine.h"
#include "src/workloads/stream.h"
#include "src/workloads/workload_common.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

constexpr uint64_t kFootprint = 64ull << 20;
constexpr uint64_t kAccesses = 60'000;

StreamWorkload::Params StreamParams(bool use_runs) {
  StreamWorkload::Params p;
  p.footprint_bytes = kFootprint;
  p.use_runs = use_runs;
  return p;
}

struct ReplayOutput {
  std::string metrics_json;
  std::string audit_json;   // report + epoch samples
  uint64_t violations = 0;
  uint64_t faults_injected = 0;
};

// Runs the stream workload under the named policy and serializes everything
// an identity check cares about: the metrics document and the audit document
// (violation report + epoch telemetry recorded at a fixed virtual cadence).
ReplayOutput RunStream(const std::string& policy_name, bool use_runs,
                       const std::string& fault_spec) {
  StreamWorkload workload(StreamParams(use_runs));
  auto policy = MakePolicy(policy_name, workload.footprint_bytes(),
                           workload.footprint_bytes() / 3);
  EngineOptions opts;
  opts.max_accesses = kAccesses;
  if (!fault_spec.empty()) {
    std::string error;
    EXPECT_TRUE(FaultPlan::Parse(fault_spec, &opts.faults, &error)) << error;
  }
  AuditSessionOptions audit_opts;
  audit_opts.record_epochs = true;
  audit_opts.epochs.interval_ns = 500'000;
  AuditSession audit(audit_opts);
  opts.audit = &audit;
  Engine engine(MachineFor(workload, 1.0 / 3.0), *policy, opts);

  ReplayOutput out;
  out.metrics_json = engine.Run(workload).ToJson(2);
  out.faults_injected = engine.metrics().faults.total_injected();
  out.violations = audit.report().violations_total;
  std::string audit_bytes;
  JsonWriter w(&audit_bytes, 2);
  w.BeginObject();
  w.Key("report");
  audit.report().WriteJson(w);
  w.Key("epochs");
  w.BeginArray();
  for (const EpochSample& sample : audit.recorder()->samples()) {
    sample.WriteJson(w);
  }
  w.EndArray();
  w.EndObject();
  out.audit_json = audit_bytes;
  return out;
}

class ReplayDifferentialTest : public ::testing::TestWithParam<std::string> {};

// The core tentpole pin: batched replay changes nothing observable. Metrics
// and audit documents (report + epochs) are compared as serialized bytes.
TEST_P(ReplayDifferentialTest, ScalarAndBatchedReplayAreByteIdentical) {
  const ReplayOutput batched = RunStream(GetParam(), /*use_runs=*/true, "");
  const ReplayOutput scalar = RunStream(GetParam(), /*use_runs=*/false, "");
  EXPECT_EQ(batched.metrics_json, scalar.metrics_json);
  EXPECT_EQ(batched.audit_json, scalar.audit_json);
  EXPECT_EQ(batched.violations, 0u);
}

// Faults force the batched path through its scalar-fallback seams (aborted
// migrations, starved budgets, shrunk tiers). The identity must survive the
// dense preset, and the plan must actually fire.
TEST_P(ReplayDifferentialTest, ScalarAndBatchedReplayMatchUnderFaultStorm) {
  const ReplayOutput batched = RunStream(GetParam(), /*use_runs=*/true, "storm");
  const ReplayOutput scalar = RunStream(GetParam(), /*use_runs=*/false, "storm");
  EXPECT_EQ(batched.metrics_json, scalar.metrics_json);
  EXPECT_EQ(batched.audit_json, scalar.audit_json);
  EXPECT_EQ(batched.violations, 0u);
  EXPECT_GT(batched.faults_injected, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplayDifferentialTest,
                         ::testing::ValuesIn(KnownPolicyNames()));

// --- Sharded execution pins -------------------------------------------------

Metrics RunPlainEngine(const std::string& policy_name, uint64_t seed) {
  StreamWorkload workload(StreamParams(/*use_runs=*/true));
  auto policy = MakePolicy(policy_name, workload.footprint_bytes(),
                           workload.footprint_bytes() / 3);
  EngineOptions opts;
  opts.max_accesses = kAccesses;
  opts.seed = seed;
  const std::unique_ptr<AuditSession> audit = MakeEnvAuditSession();
  opts.audit = audit.get();
  Engine engine(MachineFor(workload, 1.0 / 3.0), *policy, opts);
  return engine.Run(workload);
}

Metrics RunSharded(const std::string& policy_name, uint32_t shards,
                   uint32_t threads, uint64_t seed) {
  StreamWorkload workload(StreamParams(/*use_runs=*/true));
  const uint64_t slice = workload.footprint_bytes() / shards;
  PolicyFactory factory = [&policy_name, slice]() {
    return MakePolicy(policy_name, slice, slice / 3);
  };
  ShardedOptions sopts;
  sopts.shards = shards;
  sopts.threads = threads;
  sopts.engine.max_accesses = kAccesses;
  sopts.engine.seed = seed;
  std::vector<std::unique_ptr<AuditSession>> shard_audit(shards);
  sopts.audit_for_shard = [&shard_audit](uint32_t i) -> EngineObserver* {
    shard_audit[i] = MakeEnvAuditSession();
    return shard_audit[i] != nullptr ? shard_audit[i].get() : nullptr;
  };
  ShardedEngine sharded(MachineFor(workload, 1.0 / 3.0), factory, sopts);
  return sharded.Run(workload);
}

class ShardedIdentityTest : public ::testing::TestWithParam<std::string> {};

// ShardedEngine(1) must be the plain engine, byte for byte: same machine (no
// huge-block rounding), same workload (ShardSlice(0, 1) is the identity),
// same seed, and a merge that returns the single shard verbatim.
TEST_P(ShardedIdentityTest, OneShardMatchesPlainEngineBytes) {
  const Metrics plain = RunPlainEngine(GetParam(), /*seed=*/42);
  const Metrics sharded = RunSharded(GetParam(), /*shards=*/1, /*threads=*/1,
                                     /*seed=*/42);
  EXPECT_EQ(plain.ToJson(2), sharded.ToJson(2));
}

// Which worker thread runs a shard must never leak into the bytes: shards
// share no state, results land in shard-indexed slots, and the merge reads
// them in shard order.
TEST_P(ShardedIdentityTest, ThreadCountNeverChangesShardedBytes) {
  const Metrics serial = RunSharded(GetParam(), /*shards=*/4, /*threads=*/1,
                                    /*seed=*/7);
  const Metrics two = RunSharded(GetParam(), /*shards=*/4, /*threads=*/2,
                                 /*seed=*/7);
  const Metrics four = RunSharded(GetParam(), /*shards=*/4, /*threads=*/4,
                                  /*seed=*/7);
  EXPECT_EQ(serial.ToJson(2), two.ToJson(2));
  EXPECT_EQ(serial.ToJson(2), four.ToJson(2));
}

// The sharded pins run on a representative policy spread rather than all 18:
// the per-policy batched/scalar identity above already covers policy-side
// behavior, and each sharded case runs shards × threads engines.
INSTANTIATE_TEST_SUITE_P(PolicySpread, ShardedIdentityTest,
                         ::testing::Values("memtis", "memtis-ns", "hemem",
                                           "hemem-exchange", "autonuma",
                                           "autotiering"));

// --- Fuzz: batched access interleaved with structural mutation --------------

// A run-oriented fuzz workload: random-length strided runs (often crossing
// page and huge-page boundaries), random scalar pokes, and enough write
// traffic to keep split/collapse/exchange policies busy. The RNG is consumed
// identically in both modes; only the emission differs, exactly like
// StreamWorkload's differential twin.
class FuzzRunWorkload : public Workload {
 public:
  FuzzRunWorkload(uint64_t footprint_bytes, bool use_runs)
      : footprint_bytes_(footprint_bytes), use_runs_(use_runs) {}

  std::string_view name() const override { return "fuzz-runs"; }
  uint64_t footprint_bytes() const override { return footprint_bytes_; }

  void Setup(App& app, Rng& rng) override {
    (void)rng;
    base_ = app.Alloc(footprint_bytes_);
  }

  bool Step(App& app, Rng& rng) override {
    for (int r = 0; r < 4; ++r) {
      const Vaddr addr =
          base_ + rng.NextBelow(footprint_bytes_ - kHugePageSize);
      const bool is_write = rng.NextBool(0.5);
      if (rng.NextBool(0.25)) {
        // Scalar poke.
        if (is_write) {
          app.Write(addr);
        } else {
          app.Read(addr);
        }
        continue;
      }
      // A run: strides from cache-line to page-size, counts long enough to
      // cross base-page (and sometimes huge-page) boundaries.
      const uint64_t stride = uint64_t{64} << rng.NextBelow(7);  // 64 B .. 4 KiB
      const uint64_t count = 1 + rng.NextBelow(192);
      if (use_runs_) {
        if (is_write) {
          app.WriteRun(addr, count, stride);
        } else {
          app.ReadRun(addr, count, stride);
        }
      } else {
        for (uint64_t i = 0; i < count; ++i) {
          if (is_write) {
            app.Write(addr + i * stride);
          } else {
            app.Read(addr + i * stride);
          }
        }
      }
    }
    return true;
  }

 private:
  uint64_t footprint_bytes_;
  bool use_runs_;
  Vaddr base_ = 0;
};

// Policies that exercise every structural mutation the batched path can race
// with: memtis splits/collapses/migrates, hemem-exchange swaps frames.
TEST(ReplayFuzz, BatchedRunsInterleavedWithStructuralMutation) {
  for (const char* policy_name : {"memtis", "hemem-exchange"}) {
    for (const uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
      ReplayOutput out[2];
      for (const bool use_runs : {true, false}) {
        FuzzRunWorkload workload(32ull << 20, use_runs);
        auto policy = MakePolicy(policy_name, workload.footprint_bytes(),
                                 workload.footprint_bytes() / 3);
        EngineOptions opts;
        opts.max_accesses = 50'000;
        opts.seed = seed;
        AuditSession audit;  // collect mode; report asserted below
        opts.audit = &audit;
        Engine engine(MachineFor(workload, 1.0 / 3.0), *policy, opts);
        ReplayOutput& o = out[use_runs ? 0 : 1];
        o.metrics_json = engine.Run(workload).ToJson(2);
        o.violations = audit.report().violations_total;
        ASSERT_TRUE(audit.report().ok())
            << "policy=" << policy_name << " seed=" << seed
            << " use_runs=" << use_runs << "\n" << audit.report().ToJson(2);
      }
      EXPECT_EQ(out[0].metrics_json, out[1].metrics_json)
          << "policy=" << policy_name << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace memtis
