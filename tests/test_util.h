// Shared helpers for policy/workload tests.

#ifndef MEMTIS_SIM_TESTS_TEST_UTIL_H_
#define MEMTIS_SIM_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <memory>

#include "src/audit/audit_session.h"
#include "src/sim/engine.h"
#include "src/sim/policy.h"
#include "src/sim/workload.h"

namespace memtis {

// Machine with fast tier = fast_ratio * workload footprint, capacity tier
// sized generously (footprint + 50 % slack).
inline MachineConfig MachineFor(const Workload& workload, double fast_ratio,
                                bool cxl = false) {
  const uint64_t footprint = workload.footprint_bytes();
  const uint64_t fast =
      static_cast<uint64_t>(static_cast<double>(footprint) * fast_ratio);
  const uint64_t capacity = footprint + footprint / 2;
  return cxl ? MakeCxlMachine(fast, capacity) : MakeNvmMachine(fast, capacity);
}

inline Metrics RunPolicy(TieringPolicy& policy, Workload& workload,
                         const MachineConfig& machine, uint64_t accesses,
                         uint64_t snapshot_interval_ns = 0) {
  EngineOptions opts;
  opts.max_accesses = accesses;
  opts.snapshot_interval_ns = snapshot_interval_ns;
  // MEMTIS_AUDIT=1 runs every test engine under the abort-on-violation
  // auditor (scripts/check.sh's second ctest pass).
  const std::unique_ptr<AuditSession> audit = MakeEnvAuditSession();
  opts.audit = audit.get();
  Engine engine(machine, policy, opts);
  return engine.Run(workload);
}

}  // namespace memtis

#endif  // MEMTIS_SIM_TESTS_TEST_UTIL_H_
