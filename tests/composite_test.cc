#include "src/workloads/composite.h"

#include <gtest/gtest.h>

#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

TEST(CompositeWorkload, FootprintSumsTenants) {
  CompositeWorkload composite;
  composite.Add(MakeWorkload("silo", 0.1));
  composite.Add(MakeWorkload("pagerank", 0.1));
  EXPECT_EQ(composite.tenant_count(), 2u);
  EXPECT_EQ(composite.footprint_bytes(),
            MakeWorkload("silo", 0.1)->footprint_bytes() +
                MakeWorkload("pagerank", 0.1)->footprint_bytes());
}

TEST(CompositeWorkload, RunsBothTenantsUnderMemtis) {
  CompositeWorkload composite;
  composite.Add(MakeWorkload("silo", 0.1));
  composite.Add(MakeWorkload("pagerank", 0.1));
  auto policy = MakePolicy("memtis", composite.footprint_bytes(),
                           composite.footprint_bytes() / 6);
  EngineOptions opts;
  opts.max_accesses = 500'000;
  Engine engine(MachineFor(composite, 1.0 / 6.0), *policy, opts);
  const Metrics m = engine.Run(composite);
  EXPECT_GE(m.accesses, 500'000u);
  EXPECT_TRUE(engine.mem().CheckConsistency());
  // Both tenants' regions live side by side (footprint fully mapped).
  EXPECT_GE(engine.mem().mapped_4k_pages() * kPageSize,
            composite.footprint_bytes() * 9 / 10);
}

TEST(CompositeWorkload, FinishesWhenAllTenantsFinish) {
  // PageRank terminates after its iterations; composite must end then too
  // when it is the only tenant.
  CompositeWorkload composite;
  composite.Add(MakeWorkload("pagerank", 0.05));
  auto policy = MakePolicy("all-fast", 0, 0);
  EngineOptions opts;
  opts.max_accesses = 1ull << 40;  // no budget cap: natural termination
  Engine engine(MachineFor(composite, 1.5), *policy, opts);
  const Metrics m = engine.Run(composite);
  EXPECT_GT(m.accesses, 0u);
  EXPECT_LT(m.accesses, 1ull << 32);
}

}  // namespace
}  // namespace memtis
