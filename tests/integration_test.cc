// End-to-end integration: the paper's comparison setup on scaled-down
// benchmarks, checking the headline qualitative claims.

#include <gtest/gtest.h>

#include "src/memtis/memtis_policy.h"
#include "src/memtis/policy_registry.h"
#include "src/workloads/registry.h"
#include "tests/test_util.h"

namespace memtis {
namespace {

double NormalizedPerf(const std::string& system, const std::string& benchmark,
                      double fast_ratio, uint64_t accesses) {
  auto baseline_workload = MakeWorkload(benchmark, 0.25);
  auto baseline = MakePolicy("all-capacity", 0, 0);
  EngineOptions opts;
  opts.max_accesses = accesses;
  Engine baseline_engine(MachineFor(*baseline_workload, fast_ratio), *baseline, opts);
  const double baseline_ns = baseline_engine.Run(*baseline_workload).EffectiveRuntimeNs();

  auto workload = MakeWorkload(benchmark, 0.25);
  auto policy = MakePolicy(system, workload->footprint_bytes(),
                           static_cast<uint64_t>(static_cast<double>(
                               workload->footprint_bytes()) * fast_ratio));
  Engine engine(MachineFor(*workload, fast_ratio), *policy, opts);
  const double ns = engine.Run(*workload).EffectiveRuntimeNs();
  return baseline_ns / ns;
}

TEST(Integration, MemtisBeatsAllCapacityOnEveryBenchmark) {
  for (const auto& benchmark : StandardBenchmarks()) {
    const double perf = NormalizedPerf("memtis", benchmark, 1.0 / 3.0, 1'200'000);
    EXPECT_GT(perf, 1.0) << benchmark;
  }
}

TEST(Integration, MemtisCompetitiveWithHeMemOnSilo) {
  // Skewed-huge-page workload: MEMTIS's split should beat HeMem's static
  // thresholds (paper §6.2.4).
  const double memtis = NormalizedPerf("memtis", "silo", 1.0 / 9.0, 2'500'000);
  const double hemem = NormalizedPerf("hemem", "silo", 1.0 / 9.0, 2'500'000);
  EXPECT_GT(memtis, hemem);
}

TEST(Integration, MemtisBeatsTppOnCxl) {
  // Fig. 14's qualitative claim on one benchmark.
  auto run = [&](const std::string& system) {
    auto workload = MakeWorkload("silo", 0.25);
    auto policy = MakePolicy(system, workload->footprint_bytes(),
                             workload->footprint_bytes() / 9);
    EngineOptions opts;
    opts.max_accesses = 2'000'000;
    Engine engine(MachineFor(*workload, 1.0 / 9.0, /*cxl=*/true), *policy, opts);
    return engine.Run(*workload).EffectiveRuntimeNs();
  };
  EXPECT_LT(run("memtis"), run("tpp"));
}

TEST(Integration, AllSystemsCompleteAllBenchmarksQuickConfig) {
  // Smoke over the full (system x benchmark) matrix at small scale.
  for (const auto& system : ComparisonSystems()) {
    for (const auto& benchmark : StandardBenchmarks()) {
      auto workload = MakeWorkload(benchmark, 0.12);
      auto policy = MakePolicy(system, workload->footprint_bytes(),
                               workload->footprint_bytes() / 3);
      EngineOptions opts;
      opts.max_accesses = 120'000;
      Engine engine(MachineFor(*workload, 1.0 / 3.0), *policy, opts);
      const Metrics m = engine.Run(*workload);
      EXPECT_GE(m.accesses, 100'000u) << system << "/" << benchmark;
      EXPECT_TRUE(engine.mem().CheckConsistency()) << system << "/" << benchmark;
    }
  }
}

}  // namespace
}  // namespace memtis
