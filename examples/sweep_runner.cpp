// Example: drive the experiment runner programmatically — the same CLI-level
// API memtis_run uses. A 3-policy x 2-ratio sweep over one workload runs on a
// thread pool, prints an aggregate table, and emits the JSON document.
//
// Build & run:
//   cmake --build build --target sweep_runner && build/examples/sweep_runner

#include <cstdio>

#include "src/common/table.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep.h"
#include "src/runner/thread_pool.h"

int main() {
  using namespace memtis;

  // Declare the sweep: 3 policies x 2 fast:capacity ratios, plus the
  // all-capacity baseline per cell, 2 workload seeds averaged per cell.
  SweepSpec sweep;
  sweep.systems = {"memtis", "hemem", "autonuma"};
  sweep.benchmarks = {"btree"};
  sweep.fast_ratios = {1.0 / 3.0, 1.0 / 9.0};  // 1:2 and 1:8
  sweep.seeds = 2;
  sweep.accesses = 200'000;  // keep the example snappy
  sweep.include_baseline = true;

  ThreadPool pool;  // sized by MEMTIS_RUNNER_THREADS / hardware_concurrency
  const std::vector<JobSpec> jobs = ExpandJobs(sweep);
  std::printf("running %zu jobs on %d threads...\n", jobs.size(),
              pool.thread_count());
  const SweepRun run = RunSweep(sweep, pool, [](size_t done, size_t total, size_t) {
    std::fprintf(stderr, "\r  %zu/%zu done%s", done, total,
                 done == total ? "\n" : "");
  });

  // Aggregate effective runtime across seeds with the runner's aggregator,
  // then normalize each system to the matching baseline cell.
  SweepAggregator runtime;
  for (size_t i = 0; i < run.jobs.size(); ++i) {
    runtime.Add(CellKey(run.jobs[i]), run.results[i].metrics.EffectiveRuntimeNs());
  }

  Table table("3-policy x 2-ratio sweep — runtime normalized to all-capacity");
  table.SetHeader({"ratio", "memtis", "hemem", "autonuma"});
  for (double ratio : sweep.fast_ratios) {
    JobSpec cell;
    cell.benchmark = "btree";
    cell.fast_ratio = ratio;
    cell.system = "all-capacity";
    const double baseline = runtime.Mean(CellKey(cell));
    std::vector<std::string> row = {ratio > 0.3 ? "1:2" : "1:8"};
    for (const std::string& system : sweep.systems) {
      cell.system = system;
      row.push_back(Table::Num(baseline / runtime.Mean(CellKey(cell))));
    }
    table.AddRow(row);
  }
  table.Print();

  // The same data as the machine-readable document memtis_run would write.
  SinkOptions options;
  options.indent = 0;
  const std::string json = SweepToJson(sweep, run.jobs, run.results, options);
  std::printf("\nJSON document: %zu bytes (schema in README, 'Running sweeps')\n",
              json.size());
  return 0;
}
