// Quickstart: run MEMTIS on a Zipf-skewed workload over a DRAM+NVM machine
// and print what the tiering system did.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: build a machine, pick a
// workload, pick a policy, run the engine, read the metrics.

#include <cstdio>

#include "src/memtis/memtis_policy.h"
#include "src/sim/engine.h"
#include "src/workloads/synthetic.h"

int main() {
  using namespace memtis;

  // 1. A workload: 64 MiB footprint, Zipf(1.1)-skewed at 2 MiB granularity.
  SyntheticWorkload::Params wp;
  wp.footprint_bytes = 64ull << 20;
  wp.zipf_s = 1.1;
  wp.chunk_pages = kSubpagesPerHuge;
  SyntheticWorkload workload(wp);

  // 2. A machine: fast tier (DRAM, 100 ns) holds a third of the footprint;
  //    the capacity tier is Optane-like NVM (300 ns loads).
  const uint64_t fast_bytes = wp.footprint_bytes / 3;
  const MachineConfig machine =
      MakeNvmMachine(fast_bytes, wp.footprint_bytes * 3 / 2);

  // 3. The tiering system: MEMTIS with intervals scaled to this machine.
  MemtisPolicy policy(MemtisConfig::ScaledDefaults(wp.footprint_bytes, fast_bytes));

  // 4. Run 5M memory accesses through the simulator.
  EngineOptions options;
  options.max_accesses = 5'000'000;
  Engine engine(machine, policy, options);
  const Metrics metrics = engine.Run(workload);

  // 5. What happened?
  std::printf("accesses            : %lu (%lu loads, %lu stores)\n",
              static_cast<unsigned long>(metrics.accesses),
              static_cast<unsigned long>(metrics.loads),
              static_cast<unsigned long>(metrics.stores));
  std::printf("virtual runtime     : %.1f ms\n", metrics.EffectiveRuntimeNs() / 1e6);
  std::printf("fast-tier hit ratio : %.1f%%\n", metrics.fast_hit_ratio() * 100.0);
  std::printf("pages promoted      : %lu (4 KiB units)\n",
              static_cast<unsigned long>(metrics.migration.promoted_4k()));
  std::printf("pages demoted       : %lu\n",
              static_cast<unsigned long>(metrics.migration.demoted_4k()));
  std::printf("huge pages split    : %lu\n",
              static_cast<unsigned long>(metrics.migration.splits));
  std::printf("threshold adaptations: %lu, coolings: %lu\n",
              static_cast<unsigned long>(policy.stats().threshold_adaptations),
              static_cast<unsigned long>(policy.stats().coolings));
  std::printf("ksampled CPU usage  : %.2f%% of one core (cap 3%%)\n",
              metrics.cpu.core_share(DaemonKind::kSampler, metrics.app_ns) * 100.0);
  std::printf("TLB miss ratio      : %.2f%%\n", metrics.tlb.miss_ratio() * 100.0);
  return 0;
}
