// record_replay: capture a workload's access trace, then replay the identical
// stream under several tiering systems — apples-to-apples policy comparison
// with zero workload variance.
//
//   $ ./record_replay [benchmark] [trace_path]

#include <cstdio>
#include <cstdlib>

#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/trace/replay_workload.h"
#include "src/trace/trace.h"
#include "src/workloads/registry.h"

int main(int argc, char** argv) {
  using namespace memtis;

  const char* benchmark = argc > 1 ? argv[1] : "silo";
  const std::string path = argc > 2 ? argv[2] : "/tmp/memtis_example_trace.bin";

  // --- Record -----------------------------------------------------------------
  auto workload = MakeWorkload(benchmark, /*scale=*/0.25);
  const uint64_t footprint = workload->footprint_bytes();
  const uint64_t fast_bytes = footprint / 9;
  {
    TraceWriter writer(path);
    auto policy = MakePolicy("all-capacity", footprint, fast_bytes);
    EngineOptions opts;
    opts.max_accesses = 4'000'000;
    opts.trace = &writer;
    Engine engine(MakeNvmMachine(fast_bytes, footprint * 3 / 2), *policy, opts);
    engine.Run(*workload);
    writer.Finish();
    std::printf("recorded %s: %lu events, %.0f MiB footprint -> %s\n\n", benchmark,
                static_cast<unsigned long>(writer.events()),
                static_cast<double>(footprint) / (1 << 20), path.c_str());
  }

  // --- Replay under each system -------------------------------------------------
  std::printf("%-13s %12s %10s %12s\n", "system", "runtime(ms)", "fastHR", "migrated");
  for (const char* system : {"all-capacity", "tpp", "hemem", "memtis"}) {
    TraceReplayWorkload replay(path);
    auto policy = MakePolicy(system, footprint, fast_bytes);
    EngineOptions opts;
    opts.max_accesses = 1ull << 40;  // run the whole trace
    Engine engine(MakeNvmMachine(fast_bytes, footprint * 3 / 2), *policy, opts);
    const Metrics m = engine.Run(replay);
    std::printf("%-13s %12.1f %9.1f%% %12lu\n", system, m.EffectiveRuntimeNs() / 1e6,
                m.fast_hit_ratio() * 100.0,
                static_cast<unsigned long>(m.migration.migrated_4k()));
  }
  std::remove(path.c_str());
  return 0;
}
