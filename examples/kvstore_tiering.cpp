// kvstore_tiering: an in-memory key-value store (Silo/YCSB-C-like, Zipfian
// lookups with low huge-page utilisation) on tiered memory, comparing MEMTIS
// against HeMem, TPP, and running entirely on the capacity tier.
//
// This is the paper's motivating scenario for skewness-aware page-size
// determination: each 2 MiB huge page holds a few hot records, so whole-page
// placement wastes the fast tier until MEMTIS splinters the skewed pages.
//
//   $ ./kvstore_tiering [fast_ratio]     (default 1/9, the paper's 1:8)

#include <cstdio>
#include <cstdlib>

#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/workloads/kv_workloads.h"

int main(int argc, char** argv) {
  using namespace memtis;

  const double fast_ratio = argc > 1 ? std::atof(argv[1]) : 1.0 / 9.0;

  SiloWorkload::Params wp;
  wp.footprint_bytes = 96ull << 20;
  std::printf("KV store: %.0f MiB store, YCSB-C Zipf(%.2f) lookups, "
              "%u hot subpages per 2 MiB page, fast tier = %.1f%% of data\n\n",
              static_cast<double>(wp.footprint_bytes) / (1 << 20), wp.zipf_s,
              wp.hot_per_block, fast_ratio * 100.0);

  const uint64_t fast_bytes = static_cast<uint64_t>(
      static_cast<double>(wp.footprint_bytes) * fast_ratio);

  double baseline_ns = 0.0;
  for (const char* system : {"all-capacity", "tpp", "hemem", "memtis-ns", "memtis"}) {
    SiloWorkload workload(wp);
    auto policy = MakePolicy(system, wp.footprint_bytes, fast_bytes);
    EngineOptions options;
    options.max_accesses = 8'000'000;
    Engine engine(MakeNvmMachine(fast_bytes, wp.footprint_bytes * 3 / 2), *policy,
                  options);
    const Metrics m = engine.Run(workload);
    if (baseline_ns == 0.0) {
      baseline_ns = m.EffectiveRuntimeNs();
    }
    std::printf("%-13s lookups/s(norm) %.2f   fast-tier hits %5.1f%%   "
                "splits %4lu   migrated %6lu pages\n",
                system, baseline_ns / m.EffectiveRuntimeNs(),
                m.fast_hit_ratio() * 100.0,
                static_cast<unsigned long>(m.migration.splits),
                static_cast<unsigned long>(m.migration.migrated_4k()));
  }
  std::printf("\nmemtis vs memtis-ns shows the gain from skewness-aware huge "
              "page splitting alone (paper Fig. 11: +10.6%% on Silo).\n");
  return 0;
}
