// policy_shootout: run any benchmark model under any tiering system from the
// command line — the kitchen-sink driver for exploring the design space.
//
//   $ ./policy_shootout [benchmark] [system] [fast_ratio] [maccesses]
//   $ ./policy_shootout silo memtis 0.111 8
//   $ ./policy_shootout --list

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/memtis/policy_registry.h"
#include "src/sim/engine.h"
#include "src/workloads/registry.h"

int main(int argc, char** argv) {
  using namespace memtis;

  if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
    std::printf("benchmarks:");
    for (const auto& name : StandardBenchmarks()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\nsystems: ");
    for (const auto& name : ComparisonSystems()) {
      std::printf(" %s", name.c_str());
    }
    std::printf(" memtis-ns memtis-nowarm memtis-vanilla memtis-hybrid "
                "memtis-shrinker multi-clock all-fast all-fast-nothp "
                "all-capacity\n");
    return 0;
  }

  const char* benchmark = argc > 1 ? argv[1] : "silo";
  const char* system = argc > 2 ? argv[2] : "memtis";
  const double fast_ratio = argc > 3 ? std::atof(argv[3]) : 1.0 / 3.0;
  const uint64_t maccesses = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 6;

  auto workload = MakeWorkload(benchmark, /*scale=*/0.5);
  const uint64_t footprint = workload->footprint_bytes();
  const uint64_t fast_bytes =
      static_cast<uint64_t>(static_cast<double>(footprint) * fast_ratio);
  auto policy = MakePolicy(system, footprint, fast_bytes);

  EngineOptions options;
  options.max_accesses = maccesses * 1'000'000;
  Engine engine(MakeNvmMachine(fast_bytes, footprint * 3 / 2), *policy, options);
  const Metrics m = engine.Run(*workload);

  std::printf("%s on %s (fast tier %.1f%% of %.0f MiB footprint):\n", system,
              benchmark, fast_ratio * 100.0,
              static_cast<double>(footprint) / (1 << 20));
  std::printf("  runtime       %.1f virtual ms (%.1f Maccesses/s)\n",
              m.EffectiveRuntimeNs() / 1e6, m.Mops());
  std::printf("  fast-tier hits %.1f%%\n", m.fast_hit_ratio() * 100.0);
  std::printf("  migration     %lu pages promoted, %lu demoted, %lu splits, "
              "%lu collapses\n",
              static_cast<unsigned long>(m.migration.promoted_4k()),
              static_cast<unsigned long>(m.migration.demoted_4k()),
              static_cast<unsigned long>(m.migration.splits),
              static_cast<unsigned long>(m.migration.collapses));
  std::printf("  critical path %.2f%% of app time; daemons %.2f cores\n",
              100.0 * static_cast<double>(m.critical_path_ns) /
                  static_cast<double>(m.app_ns),
              static_cast<double>(m.cpu.total_busy()) /
                  static_cast<double>(m.app_ns));
  std::printf("  RSS           %.1f MiB (peak %.1f MiB)\n",
              static_cast<double>(m.final_rss_pages) * kPageSize / (1 << 20),
              static_cast<double>(m.peak_rss_pages) * kPageSize / (1 << 20));
  std::printf("  TLB           %.2f%% miss ratio, %lu shootdowns\n",
              m.tlb.miss_ratio() * 100.0,
              static_cast<unsigned long>(m.tlb.shootdowns));
  return 0;
}
