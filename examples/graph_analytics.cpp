// graph_analytics: PageRank-style analytics (streamed edge lists + a hot rank
// array) over DRAM+CXL tiered memory, with a live view of MEMTIS's
// classification as the run progresses.
//
//   $ ./graph_analytics [fast_ratio]     (default 1/3, the paper's 1:2)

#include <cstdio>
#include <cstdlib>

#include "src/memtis/memtis_policy.h"
#include "src/sim/engine.h"
#include "src/workloads/graph_workloads.h"

int main(int argc, char** argv) {
  using namespace memtis;

  const double fast_ratio = argc > 1 ? std::atof(argv[1]) : 1.0 / 3.0;

  PageRankWorkload::Params wp;
  wp.footprint_bytes = 128ull << 20;
  PageRankWorkload workload(wp);

  const uint64_t fast_bytes = static_cast<uint64_t>(
      static_cast<double>(wp.footprint_bytes) * fast_ratio);
  MemtisPolicy policy(MemtisConfig::ScaledDefaults(wp.footprint_bytes, fast_bytes));

  EngineOptions options;
  options.max_accesses = 8'000'000;
  options.snapshot_interval_ns = 5'000'000;
  // CXL-attached capacity tier (177 ns loads) instead of NVM.
  Engine engine(MakeCxlMachine(fast_bytes, wp.footprint_bytes * 3 / 2), policy,
                options);
  const Metrics m = engine.Run(workload);

  std::printf("PageRank over DRAM + CXL, fast tier %.0f MiB of %.0f MiB data\n\n",
              static_cast<double>(fast_bytes) / (1 << 20),
              static_cast<double>(wp.footprint_bytes) / (1 << 20));
  std::printf("%8s %10s %10s %10s %12s %10s\n", "t(ms)", "hot(MiB)", "warm(MiB)",
              "cold(MiB)", "fastHR(win)", "Mops");
  const size_t stride = std::max<size_t>(1, m.timeline.size() / 20);
  for (size_t i = 0; i < m.timeline.size(); i += stride) {
    const auto& p = m.timeline[i];
    std::printf("%8.1f %10.1f %10.1f %10.1f %11.1f%% %10.1f\n", p.t_ns / 1e6,
                static_cast<double>(p.classified.hot_bytes) / (1 << 20),
                static_cast<double>(p.classified.warm_bytes) / (1 << 20),
                static_cast<double>(p.classified.cold_bytes) / (1 << 20),
                p.window_fast_ratio * 100.0, p.window_mops);
  }
  std::printf("\noverall: %.1f%% of accesses served from DRAM; %lu pages "
              "promoted, %lu demoted; hot threshold settled at bin %d\n",
              m.fast_hit_ratio() * 100.0,
              static_cast<unsigned long>(m.migration.promoted_4k()),
              static_cast<unsigned long>(m.migration.demoted_4k()),
              policy.hot_threshold_bin());
  return 0;
}
